//! A replica's object store.

use crate::messages::{TxnId, Version};
use acn_txir::{ObjectId, ObjectVal};
use std::collections::HashMap;

/// One replicated object as held by a server: the paper's per-object
/// meta-data is the *version number* (used during validation) and the
/// *protected* flag (here the id of the transaction holding the commit
/// lock, so release is owner-checked).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionedObject {
    /// Commit version (0 = never written).
    pub version: Version,
    /// The object payload.
    pub value: ObjectVal,
    /// `Some(txn)` while `txn` holds the commit lock ("protected is true").
    pub protected: Option<TxnId>,
}

/// A server's full-replication object store. Objects materialise lazily:
/// a never-written object reads as version 0 with a default value on every
/// replica, which is also how the benchmarks "insert" rows (open a fresh
/// id, populate, commit).
#[derive(Debug, Default)]
pub struct Store {
    objects: HashMap<ObjectId, VersionedObject>,
}

impl Store {
    /// An empty replica store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the replica's copy: `(version, value, protected-by)`.
    pub fn read(&self, obj: ObjectId) -> (Version, ObjectVal, Option<TxnId>) {
        match self.objects.get(&obj) {
            Some(o) => (o.version, o.value.clone(), o.protected),
            None => (0, ObjectVal::new(), None),
        }
    }

    /// This replica's version of `obj` (0 if never written here).
    pub fn version(&self, obj: ObjectId) -> Version {
        self.objects.get(&obj).map(|o| o.version).unwrap_or(0)
    }

    /// Who protects `obj`, if anyone.
    pub fn lock_holder(&self, obj: ObjectId) -> Option<TxnId> {
        self.objects.get(&obj).and_then(|o| o.protected)
    }

    /// Try to protect `obj` for `txn`. Re-acquisition by the same holder
    /// succeeds (idempotent prepare retries). Returns `false` on conflict.
    pub fn try_lock(&mut self, obj: ObjectId, txn: TxnId) -> bool {
        let entry = self.objects.entry(obj).or_default();
        match entry.protected {
            None => {
                entry.protected = Some(txn);
                true
            }
            Some(holder) => holder == txn,
        }
    }

    /// Release `obj` if held by `txn`; foreign locks are left untouched.
    pub fn unlock(&mut self, obj: ObjectId, txn: TxnId) {
        if let Some(entry) = self.objects.get_mut(&obj) {
            if entry.protected == Some(txn) {
                entry.protected = None;
            }
        }
    }

    /// Apply a committed write: install `value` at `version` and release
    /// `txn`'s lock. Versions only move forward — a replica that already
    /// holds a newer copy (possible when a stale client commit races a
    /// recovered replica) keeps it.
    pub fn apply(&mut self, obj: ObjectId, version: Version, value: ObjectVal, txn: TxnId) {
        let entry = self.objects.entry(obj).or_default();
        if version > entry.version {
            entry.version = version;
            entry.value = value;
        }
        if entry.protected == Some(txn) {
            entry.protected = None;
        }
    }

    /// Number of objects this replica has materialised.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no object has materialised.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_simnet::NodeId;
    use acn_txir::{FieldId, ObjClass, Value};

    const C: ObjClass = ObjClass::new(0, "C");
    const OBJ: ObjectId = ObjectId::new(C, 1);

    fn txn(seq: u64) -> TxnId {
        TxnId {
            client: NodeId(9),
            seq,
        }
    }

    fn val(v: i64) -> ObjectVal {
        ObjectVal::from_fields([(FieldId(0), Value::Int(v))])
    }

    #[test]
    fn unknown_object_reads_as_fresh() {
        let s = Store::new();
        let (ver, value, lock) = s.read(OBJ);
        assert_eq!(ver, 0);
        assert!(value.is_empty());
        assert!(lock.is_none());
        assert_eq!(s.version(OBJ), 0);
    }

    #[test]
    fn apply_installs_and_unlocks() {
        let mut s = Store::new();
        assert!(s.try_lock(OBJ, txn(1)));
        s.apply(OBJ, 1, val(10), txn(1));
        let (ver, value, lock) = s.read(OBJ);
        assert_eq!(ver, 1);
        assert_eq!(value, val(10));
        assert!(lock.is_none());
    }

    #[test]
    fn lock_conflicts_are_detected() {
        let mut s = Store::new();
        assert!(s.try_lock(OBJ, txn(1)));
        assert!(!s.try_lock(OBJ, txn(2)), "second holder must fail");
        assert!(s.try_lock(OBJ, txn(1)), "re-acquisition is idempotent");
        assert_eq!(s.lock_holder(OBJ), Some(txn(1)));
    }

    #[test]
    fn unlock_is_owner_checked() {
        let mut s = Store::new();
        s.try_lock(OBJ, txn(1));
        s.unlock(OBJ, txn(2)); // not the owner
        assert_eq!(s.lock_holder(OBJ), Some(txn(1)));
        s.unlock(OBJ, txn(1));
        assert_eq!(s.lock_holder(OBJ), None);
    }

    #[test]
    fn versions_never_regress() {
        let mut s = Store::new();
        s.apply(OBJ, 5, val(50), txn(1));
        s.apply(OBJ, 3, val(30), txn(2)); // stale apply
        let (ver, value, _) = s.read(OBJ);
        assert_eq!(ver, 5);
        assert_eq!(value, val(50));
    }

    #[test]
    fn stale_apply_still_releases_own_lock() {
        let mut s = Store::new();
        s.apply(OBJ, 5, val(50), txn(1));
        s.try_lock(OBJ, txn(2));
        s.apply(OBJ, 3, val(30), txn(2));
        assert_eq!(s.lock_holder(OBJ), None);
        assert_eq!(s.version(OBJ), 5);
    }

    #[test]
    fn len_counts_materialised_objects() {
        let mut s = Store::new();
        assert!(s.is_empty());
        s.apply(OBJ, 1, val(1), txn(1));
        s.apply(ObjectId::new(C, 2), 1, val(2), txn(1));
        assert_eq!(s.len(), 2);
    }
}
