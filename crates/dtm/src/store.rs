//! A replica's object store.

use crate::messages::{TxnId, Version};
use acn_txir::{ObjectId, ObjectVal};
use std::collections::{BTreeMap, HashMap};

/// One object class's slice of a [`StoreDigest`]: enough to detect
/// divergence between replicas cheaply (count + max + xor of versions)
/// without shipping or comparing the objects themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassDigest {
    /// Objects of this class materialised on the replica.
    pub count: u64,
    /// Highest committed version among them.
    pub max_version: Version,
    /// XOR over `version * (object index + 1)` of every object, an
    /// order-independent fingerprint: two replicas that agree per class on
    /// `count`, `max_version` and `xor` almost certainly hold identical
    /// version vectors.
    pub xor: u64,
}

/// A replica's per-class store fingerprint, cheap to compute and compare.
/// Used by the recovery subsystem to assert that a re-synced replica
/// converged to a healthy peer, and exported through `ServerStats` for
/// divergence checks in tests and chaos suites.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreDigest {
    /// Digest per object-class id, ordered by class id.
    pub classes: BTreeMap<u16, ClassDigest>,
}

impl StoreDigest {
    /// Total objects across all classes.
    pub fn total_objects(&self) -> u64 {
        self.classes.values().map(|c| c.count).sum()
    }
}

/// One replicated object as held by a server: the paper's per-object
/// meta-data is the *version number* (used during validation) and the
/// *protected* flag (here the id of the transaction holding the commit
/// lock, so release is owner-checked).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionedObject {
    /// Commit version (0 = never written).
    pub version: Version,
    /// The object payload.
    pub value: ObjectVal,
    /// `Some(txn)` while `txn` holds the commit lock ("protected is true").
    pub protected: Option<TxnId>,
}

/// A server's full-replication object store. Objects materialise lazily:
/// a never-written object reads as version 0 with a default value on every
/// replica, which is also how the benchmarks "insert" rows (open a fresh
/// id, populate, commit).
#[derive(Debug, Default)]
pub struct Store {
    objects: HashMap<ObjectId, VersionedObject>,
}

impl Store {
    /// An empty replica store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the replica's copy: `(version, value, protected-by)`.
    pub fn read(&self, obj: ObjectId) -> (Version, ObjectVal, Option<TxnId>) {
        match self.objects.get(&obj) {
            Some(o) => (o.version, o.value.clone(), o.protected),
            None => (0, ObjectVal::new(), None),
        }
    }

    /// This replica's version of `obj` (0 if never written here).
    pub fn version(&self, obj: ObjectId) -> Version {
        self.objects.get(&obj).map(|o| o.version).unwrap_or(0)
    }

    /// Who protects `obj`, if anyone.
    pub fn lock_holder(&self, obj: ObjectId) -> Option<TxnId> {
        self.objects.get(&obj).and_then(|o| o.protected)
    }

    /// Try to protect `obj` for `txn`. Re-acquisition by the same holder
    /// succeeds (idempotent prepare retries). Returns `false` on conflict.
    pub fn try_lock(&mut self, obj: ObjectId, txn: TxnId) -> bool {
        let entry = self.objects.entry(obj).or_default();
        match entry.protected {
            None => {
                entry.protected = Some(txn);
                true
            }
            Some(holder) => holder == txn,
        }
    }

    /// Release `obj` if held by `txn`; foreign locks are left untouched.
    pub fn unlock(&mut self, obj: ObjectId, txn: TxnId) {
        if let Some(entry) = self.objects.get_mut(&obj) {
            if entry.protected == Some(txn) {
                entry.protected = None;
            }
        }
    }

    /// Apply a committed write: install `value` at `version` and release
    /// `txn`'s lock. Versions only move forward — a replica that already
    /// holds a newer copy (possible when a stale client commit races a
    /// recovered replica) keeps it.
    /// Returns `true` when the write advanced the replica's copy (the
    /// repair path counts only effective repairs).
    pub fn apply(&mut self, obj: ObjectId, version: Version, value: ObjectVal, txn: TxnId) -> bool {
        let entry = self.objects.entry(obj).or_default();
        let advanced = version > entry.version;
        if advanced {
            entry.version = version;
            entry.value = value;
        }
        if entry.protected == Some(txn) {
            entry.protected = None;
        }
        advanced
    }

    /// Wipe every object (crash-with-amnesia). Locks vanish with the
    /// state; the lock holders' 2PC outcomes are unaffected because a
    /// wiped replica refuses to vote until it has re-synced.
    pub fn wipe(&mut self) {
        self.objects.clear();
    }

    /// Snapshot the full inventory — `(object, version, value)` for every
    /// materialised object — for a [`crate::Msg::SyncResp`]. Lock state is
    /// deliberately excluded: a recovering replica must not inherit
    /// another replica's in-flight `protected` flags.
    pub fn inventory(&self) -> Vec<(ObjectId, Version, ObjectVal)> {
        self.objects
            .iter()
            .map(|(&obj, o)| (obj, o.version, o.value.clone()))
            .collect()
    }

    /// The versions this replica already holds — the "I have" half of a
    /// delta sync ([`crate::Msg::SyncDeltaReq`]): a peer answers with
    /// only the objects that are absent here or newer there.
    pub fn known_versions(&self) -> Vec<(ObjectId, Version)> {
        self.objects
            .iter()
            .map(|(&obj, o)| (obj, o.version))
            .collect()
    }

    /// Per-class fingerprint of the store (see [`StoreDigest`]).
    pub fn digest(&self) -> StoreDigest {
        let mut classes: BTreeMap<u16, ClassDigest> = BTreeMap::new();
        for (obj, o) in &self.objects {
            let d = classes.entry(obj.class.id).or_default();
            d.count += 1;
            d.max_version = d.max_version.max(o.version);
            d.xor ^= o.version.wrapping_mul(obj.index.wrapping_add(1));
        }
        StoreDigest { classes }
    }

    /// Number of objects this replica has materialised.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no object has materialised.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_simnet::NodeId;
    use acn_txir::{FieldId, ObjClass, Value};

    const C: ObjClass = ObjClass::new(0, "C");
    const OBJ: ObjectId = ObjectId::new(C, 1);

    fn txn(seq: u64) -> TxnId {
        TxnId {
            client: NodeId(9),
            seq,
        }
    }

    fn val(v: i64) -> ObjectVal {
        ObjectVal::from_fields([(FieldId(0), Value::Int(v))])
    }

    #[test]
    fn unknown_object_reads_as_fresh() {
        let s = Store::new();
        let (ver, value, lock) = s.read(OBJ);
        assert_eq!(ver, 0);
        assert!(value.is_empty());
        assert!(lock.is_none());
        assert_eq!(s.version(OBJ), 0);
    }

    #[test]
    fn apply_installs_and_unlocks() {
        let mut s = Store::new();
        assert!(s.try_lock(OBJ, txn(1)));
        s.apply(OBJ, 1, val(10), txn(1));
        let (ver, value, lock) = s.read(OBJ);
        assert_eq!(ver, 1);
        assert_eq!(value, val(10));
        assert!(lock.is_none());
    }

    #[test]
    fn lock_conflicts_are_detected() {
        let mut s = Store::new();
        assert!(s.try_lock(OBJ, txn(1)));
        assert!(!s.try_lock(OBJ, txn(2)), "second holder must fail");
        assert!(s.try_lock(OBJ, txn(1)), "re-acquisition is idempotent");
        assert_eq!(s.lock_holder(OBJ), Some(txn(1)));
    }

    #[test]
    fn unlock_is_owner_checked() {
        let mut s = Store::new();
        s.try_lock(OBJ, txn(1));
        s.unlock(OBJ, txn(2)); // not the owner
        assert_eq!(s.lock_holder(OBJ), Some(txn(1)));
        s.unlock(OBJ, txn(1));
        assert_eq!(s.lock_holder(OBJ), None);
    }

    #[test]
    fn versions_never_regress() {
        let mut s = Store::new();
        s.apply(OBJ, 5, val(50), txn(1));
        s.apply(OBJ, 3, val(30), txn(2)); // stale apply
        let (ver, value, _) = s.read(OBJ);
        assert_eq!(ver, 5);
        assert_eq!(value, val(50));
    }

    #[test]
    fn stale_apply_still_releases_own_lock() {
        let mut s = Store::new();
        s.apply(OBJ, 5, val(50), txn(1));
        s.try_lock(OBJ, txn(2));
        s.apply(OBJ, 3, val(30), txn(2));
        assert_eq!(s.lock_holder(OBJ), None);
        assert_eq!(s.version(OBJ), 5);
    }

    #[test]
    fn apply_reports_whether_it_advanced() {
        let mut s = Store::new();
        assert!(s.apply(OBJ, 5, val(50), txn(1)), "fresh install advances");
        assert!(!s.apply(OBJ, 3, val(30), txn(2)), "stale apply does not");
        assert!(!s.apply(OBJ, 5, val(50), txn(3)), "same version does not");
        assert!(s.apply(OBJ, 6, val(60), txn(4)));
    }

    #[test]
    fn wipe_loses_everything_including_locks() {
        let mut s = Store::new();
        s.apply(OBJ, 4, val(4), txn(1));
        s.try_lock(ObjectId::new(C, 2), txn(2));
        s.wipe();
        assert!(s.is_empty());
        assert_eq!(s.version(OBJ), 0, "amnesia: reads as fresh");
        assert_eq!(s.lock_holder(ObjectId::new(C, 2)), None);
    }

    #[test]
    fn inventory_round_trips_through_apply() {
        let mut a = Store::new();
        a.apply(OBJ, 3, val(3), txn(1));
        a.apply(ObjectId::new(C, 2), 7, val(7), txn(1));
        a.try_lock(OBJ, txn(9)); // locks must not travel
        let mut b = Store::new();
        for (obj, ver, value) in a.inventory() {
            b.apply(obj, ver, value, txn(0));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.lock_holder(OBJ), None, "inventory carries no locks");
        assert_eq!(b.read(OBJ).0, 3);
        assert_eq!(b.read(ObjectId::new(C, 2)).1, val(7));
    }

    #[test]
    fn digest_detects_divergence_per_class() {
        const D: ObjClass = ObjClass::new(1, "D");
        let mut a = Store::new();
        a.apply(OBJ, 3, val(3), txn(1));
        a.apply(ObjectId::new(D, 1), 2, val(2), txn(1));
        let mut b = Store::new();
        b.apply(OBJ, 3, val(3), txn(1));
        b.apply(ObjectId::new(D, 1), 2, val(2), txn(1));
        assert_eq!(a.digest(), b.digest(), "identical stores agree");
        assert_eq!(a.digest().total_objects(), 2);

        b.apply(ObjectId::new(D, 1), 4, val(4), txn(2));
        let (da, db) = (a.digest(), b.digest());
        assert_ne!(da, db, "a newer version must change the digest");
        assert_eq!(
            da.classes.get(&0),
            db.classes.get(&0),
            "the untouched class still agrees"
        );
        let dd = db.classes.get(&1).unwrap();
        assert_eq!(dd.max_version, 4);
        assert_eq!(dd.count, 1);

        // Same count and max but a different version *vector* still
        // diverges, caught by the xor term.
        let mut c = Store::new();
        c.apply(ObjectId::new(C, 5), 3, val(1), txn(1));
        let mut e = Store::new();
        e.apply(ObjectId::new(C, 6), 3, val(1), txn(1));
        assert_ne!(c.digest(), e.digest());
    }

    #[test]
    fn len_counts_materialised_objects() {
        let mut s = Store::new();
        assert!(s.is_empty());
        s.apply(OBJ, 1, val(1), txn(1));
        s.apply(ObjectId::new(C, 2), 1, val(2), txn(1));
        assert_eq!(s.len(), 2);
    }
}
