//! Cluster-wide committed-transaction history and its invariant checker.
//!
//! Every client appends a [`CommitRecord`] to a shared [`HistoryLog`] at
//! its commit decision point (read-only validations included). The checker
//! then verifies, mechanically, the invariants the QR-DTM design argues for
//! on paper:
//!
//! 1. **At-most-once commit** — no transaction id commits twice. Retried
//!    2PC rounds are deduped server-side; a duplicate here means a client
//!    decided the same transaction twice.
//! 2. **Version lineage** — at most one committed writer per (object,
//!    version), every writer of version `v` read version `v − 1` (no lost
//!    updates), and every committed read of version `v > 0` matches some
//!    committed write of exactly `(object, v)` — reading a version no
//!    committed transaction produced means a torn or phantom commit leaked
//!    through quorum intersection.
//! 3. **Serializability** — the multiversion serialization graph over the
//!    committed transactions (version order = version number) is acyclic.
//!
//! The checker is deliberately history-only: it never inspects server
//! state, so it works identically under chaos schedules where replicas
//! legitimately diverge within version-monotonicity bounds.

use crate::messages::{TxnId, ValidateEntry, Version};
use acn_txir::ObjectId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// One committed transaction's externally visible footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// The committed transaction.
    pub txn: TxnId,
    /// Full read-set with the versions read (write-set reads included).
    pub reads: Vec<ValidateEntry>,
    /// `(object, installed version)` per write; empty for read-only.
    pub writes: Vec<(ObjectId, Version)>,
}

/// Append-only, thread-shared log of committed transactions.
#[derive(Default)]
pub struct HistoryLog {
    records: Mutex<Vec<CommitRecord>>,
    /// Transactions whose commit was *acknowledged* to the issuing client
    /// (phase 2 gathered from the full write quorum). Stricter than
    /// `records`: a record marks the decision, an ack marks the promise —
    /// the durability checker holds servers to the promise.
    acked: Mutex<HashSet<TxnId>>,
}

impl HistoryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one committed transaction.
    pub fn record(&self, rec: CommitRecord) {
        self.records.lock().push(rec);
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Copy of the records so far.
    pub fn snapshot(&self) -> Vec<CommitRecord> {
        self.records.lock().clone()
    }

    /// Mark a transaction's commit as acknowledged to its client. Under
    /// ack-after-durable servers only release the ack once the covering
    /// WAL records are synced, so everything marked here must survive any
    /// later crash-restart — [`check_durability`] verifies exactly that.
    pub fn record_ack(&self, txn: TxnId) {
        self.acked.lock().insert(txn);
    }

    /// Copy of the acknowledged-transaction set so far.
    pub fn acked_snapshot(&self) -> HashSet<TxnId> {
        self.acked.lock().clone()
    }

    /// Run the invariant checker over the current records.
    pub fn check(&self) -> Result<HistorySummary, Vec<Violation>> {
        check_history(&self.snapshot())
    }
}

/// A broken history invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// One transaction id committed more than once.
    DuplicateCommit {
        /// The doubly committed transaction.
        txn: TxnId,
    },
    /// Two committed transactions installed the same (object, version) —
    /// a torn commit: quorum intersection failed to serialize the writers.
    TornWrite {
        /// The doubly written object.
        obj: ObjectId,
        /// The version both writers installed.
        version: Version,
        /// The two writers.
        txns: (TxnId, TxnId),
    },
    /// A committed transaction read a version no committed transaction
    /// wrote.
    ReadOfUncommitted {
        /// The reading transaction.
        txn: TxnId,
        /// The object read.
        obj: ObjectId,
        /// The phantom version.
        version: Version,
    },
    /// A writer installed version `v` without having read `v − 1`: the
    /// update lost whatever `v − 1`'s writer installed.
    LostUpdate {
        /// The writing transaction.
        txn: TxnId,
        /// The object written.
        obj: ObjectId,
        /// The version installed.
        wrote: Version,
    },
    /// The multiversion serialization graph has a cycle.
    Cycle {
        /// The transactions on the detected cycle, in graph order.
        txns: Vec<TxnId>,
    },
    /// A commit acknowledged to a client did not survive: no replica
    /// retained the written object at (or above) the acked version. The
    /// durability promise — ack only after the covering WAL records are
    /// synced — was broken.
    LostAck {
        /// The acked-but-lost transaction.
        txn: TxnId,
        /// The object whose write vanished.
        obj: ObjectId,
        /// The version the ack promised.
        version: Version,
    },
    /// A replica retained an (object, version) no committed transaction
    /// wrote — a torn or partial replay leaked phantom state past the
    /// WAL's checksum/truncation discipline.
    TornReplay {
        /// The phantom object.
        obj: ObjectId,
        /// The version no committed transaction produced.
        version: Version,
    },
}

/// What a passing check covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistorySummary {
    /// Committed transactions checked.
    pub commits: usize,
    /// Distinct objects touched.
    pub objects: usize,
    /// Highest version installed on any object.
    pub max_version: Version,
    /// Dependency edges in the serialization graph.
    pub edges: usize,
}

/// What a passing durability check covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilitySummary {
    /// Acknowledged commits whose writes were verified present.
    pub acked_commits: usize,
    /// Replica inventories compared against.
    pub replicas: usize,
    /// Distinct objects any replica retained.
    pub objects_covered: usize,
}

/// The lost-ack checker: cross-examine the committed history against the
/// object-version inventories the replicas actually hold (typically taken
/// after crash-restart recovery, when [`crate::FaultLogConfig`] has been
/// dropping unsynced WAL suffixes).
///
/// Two invariants, the two halves of the durability contract:
///
/// 1. **No lost acks** — every write of every *acknowledged* transaction
///    must be retained by at least one replica at (or above) the acked
///    version. The ack required phase-2 responses from the full write
///    quorum, each held back until the covering WAL records were synced;
///    versions only move forward, so the maximum over replicas dominating
///    the acked version is exactly "the write survived". Un-acked commits
///    are exempt: the client never got the promise, losing them is
///    allowed (their decision-point records still feed invariant 2).
/// 2. **No torn replay** — a replica must never retain an (object,
///    version) that no committed transaction wrote: a half-replayed or
///    corrupt frame surviving into the store would show up as exactly
///    such phantom state.
pub fn check_durability(
    records: &[CommitRecord],
    acked: &HashSet<TxnId>,
    inventories: &[Vec<(ObjectId, Version)>],
) -> Result<DurabilitySummary, Vec<Violation>> {
    let mut violations = Vec::new();

    // Best surviving version per object across every replica.
    let mut best: HashMap<ObjectId, Version> = HashMap::new();
    for inv in inventories {
        for &(obj, v) in inv {
            let e = best.entry(obj).or_insert(0);
            *e = (*e).max(v);
        }
    }

    // Invariant 1: acked writes survived somewhere.
    for rec in records {
        if !acked.contains(&rec.txn) {
            continue;
        }
        for &(obj, version) in &rec.writes {
            if best.get(&obj).copied().unwrap_or(0) < version {
                violations.push(Violation::LostAck {
                    txn: rec.txn,
                    obj,
                    version,
                });
            }
        }
    }

    // Invariant 2: everything retained was committed by someone. All
    // committed writes legitimize replica state here, acked or not — a
    // decided commit may survive without its ack ever reaching the client.
    let written: HashSet<(ObjectId, Version)> = records
        .iter()
        .flat_map(|r| r.writes.iter().copied())
        .collect();
    let mut reported: HashSet<(ObjectId, Version)> = HashSet::new();
    for inv in inventories {
        for &(obj, version) in inv {
            if version > 0 && !written.contains(&(obj, version)) && reported.insert((obj, version))
            {
                violations.push(Violation::TornReplay { obj, version });
            }
        }
    }

    if !violations.is_empty() {
        return Err(violations);
    }
    Ok(DurabilitySummary {
        acked_commits: records.iter().filter(|r| acked.contains(&r.txn)).count(),
        replicas: inventories.len(),
        objects_covered: best.len(),
    })
}

/// Check a history for the invariants described at module level. Returns
/// every violation found, or a summary of what a clean history covered.
pub fn check_history(records: &[CommitRecord]) -> Result<HistorySummary, Vec<Violation>> {
    let mut violations = Vec::new();

    // At-most-once commit per transaction id.
    let mut seen: HashMap<TxnId, usize> = HashMap::new();
    for rec in records {
        if seen.insert(rec.txn, seen.len()).is_some() {
            violations.push(Violation::DuplicateCommit { txn: rec.txn });
        }
    }

    // Version lineage: unique writers, no lost updates.
    // writers[obj][version] = index of the (first) record that wrote it.
    let mut writers: HashMap<ObjectId, HashMap<Version, usize>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        for &(obj, version) in &rec.writes {
            match writers.entry(obj).or_default().entry(version) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // A retried commit deduped at (txn, req) never reaches
                    // here twice; same-txn duplicates are DuplicateCommit.
                    if records[*e.get()].txn != rec.txn {
                        violations.push(Violation::TornWrite {
                            obj,
                            version,
                            txns: (records[*e.get()].txn, rec.txn),
                        });
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
            let read_prior = rec.reads.iter().any(|&(o, v)| o == obj && v + 1 == version);
            if !read_prior {
                violations.push(Violation::LostUpdate {
                    txn: rec.txn,
                    obj,
                    wrote: version,
                });
            }
        }
    }

    // Every committed read of v > 0 matches a committed write of (obj, v).
    for rec in records {
        for &(obj, version) in &rec.reads {
            if version == 0 {
                continue; // initial state
            }
            let written = writers
                .get(&obj)
                .is_some_and(|vs| vs.contains_key(&version));
            if !written {
                violations.push(Violation::ReadOfUncommitted {
                    txn: rec.txn,
                    obj,
                    version,
                });
            }
        }
    }

    // Multiversion serialization graph, version order = version number:
    //   wr: writer(o, v)   → reader(o, v)
    //   ww: writer(o, v)   → writer(o, next(v))
    //   rw: reader(o, v)   → writer(o, next(v))   (anti-dependency)
    let mut readers: HashMap<(ObjectId, Version), Vec<usize>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        for &(obj, version) in &rec.reads {
            readers.entry((obj, version)).or_default().push(i);
        }
    }
    let n = records.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0usize;
    let mut add_edge = |adj: &mut Vec<Vec<usize>>, from: usize, to: usize| {
        if from != to && !adj[from].contains(&to) {
            adj[from].push(to);
            edges += 1;
        }
    };
    for (&obj, versions) in &writers {
        let mut ordered: Vec<(Version, usize)> = versions.iter().map(|(&v, &i)| (v, i)).collect();
        ordered.sort_unstable_by_key(|&(v, _)| v);
        for (idx, &(v, wi)) in ordered.iter().enumerate() {
            if let Some(rs) = readers.get(&(obj, v)) {
                for &ri in rs {
                    add_edge(&mut adj, wi, ri);
                }
            }
            if let Some(&(_, nwi)) = ordered.get(idx + 1) {
                add_edge(&mut adj, wi, nwi);
                // Readers of version v antidepend on the next version's
                // writer.
                if let Some(rs) = readers.get(&(obj, v)) {
                    for &ri in rs {
                        add_edge(&mut adj, ri, nwi);
                    }
                }
            }
        }
        // Readers of the initial state antidepend on the first writer.
        if let Some(&(_, first_wi)) = ordered.first() {
            if let Some(rs) = readers.get(&(obj, 0)) {
                for &ri in rs {
                    add_edge(&mut adj, ri, first_wi);
                }
            }
        }
    }

    // Iterative three-color DFS for a cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // Stack of (node, next child index); `path` mirrors the gray chain.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&child) = adj[node].get(*next) {
                *next += 1;
                match color[child] {
                    WHITE => {
                        color[child] = GRAY;
                        stack.push((child, 0));
                    }
                    GRAY => {
                        let from = stack.iter().position(|&(nd, _)| nd == child).unwrap_or(0);
                        violations.push(Violation::Cycle {
                            txns: stack[from..]
                                .iter()
                                .map(|&(nd, _)| records[nd].txn)
                                .collect(),
                        });
                        // One cycle is enough evidence; stop searching.
                        color.iter_mut().for_each(|c| *c = BLACK);
                        stack.clear();
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }

    if !violations.is_empty() {
        return Err(violations);
    }
    Ok(HistorySummary {
        commits: records.len(),
        objects: {
            let mut objs: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
            for rec in records {
                objs.extend(rec.writes.iter().map(|&(o, _)| o));
                objs.extend(rec.reads.iter().map(|&(o, _)| o));
            }
            objs.len()
        },
        max_version: writers
            .values()
            .flat_map(|vs| vs.keys().copied())
            .max()
            .unwrap_or(0),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_simnet::NodeId;
    use acn_txir::ObjClass;

    fn obj(i: u64) -> ObjectId {
        ObjectId::new(ObjClass::new(1, "t"), i)
    }

    fn txn(client: u32, seq: u64) -> TxnId {
        TxnId {
            client: NodeId(client),
            seq,
        }
    }

    fn rec(t: TxnId, reads: &[(u64, Version)], writes: &[(u64, Version)]) -> CommitRecord {
        CommitRecord {
            txn: t,
            reads: reads.iter().map(|&(o, v)| (obj(o), v)).collect(),
            writes: writes.iter().map(|&(o, v)| (obj(o), v)).collect(),
        }
    }

    #[test]
    fn clean_serial_history_passes() {
        // t1 writes a:1, t2 reads a:1 writes a:2, t3 reads a:2 (read-only).
        let h = vec![
            rec(txn(9, 0), &[(1, 0)], &[(1, 1)]),
            rec(txn(9, 1), &[(1, 1)], &[(1, 2)]),
            rec(txn(10, 0), &[(1, 2)], &[]),
        ];
        let summary = check_history(&h).expect("history is serializable");
        assert_eq!(summary.commits, 3);
        assert_eq!(summary.objects, 1);
        assert_eq!(summary.max_version, 2);
        assert!(summary.edges >= 2);
    }

    #[test]
    fn empty_history_passes() {
        assert!(check_history(&[]).is_ok());
    }

    #[test]
    fn duplicate_txn_id_flagged() {
        let h = vec![
            rec(txn(9, 0), &[(1, 0)], &[(1, 1)]),
            rec(txn(9, 0), &[(1, 1)], &[(1, 2)]),
        ];
        let v = check_history(&h).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DuplicateCommit { txn } if *txn == txn9())));
        fn txn9() -> TxnId {
            TxnId {
                client: NodeId(9),
                seq: 0,
            }
        }
    }

    #[test]
    fn torn_write_flagged() {
        // Two different transactions install a:1 — quorum intersection broke.
        let h = vec![
            rec(txn(9, 0), &[(1, 0)], &[(1, 1)]),
            rec(txn(10, 0), &[(1, 0)], &[(1, 1)]),
        ];
        let v = check_history(&h).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TornWrite { version: 1, .. })));
    }

    #[test]
    fn read_of_uncommitted_version_flagged() {
        let h = vec![rec(txn(9, 0), &[(1, 7)], &[])];
        let v = check_history(&h).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ReadOfUncommitted { version: 7, .. })));
    }

    #[test]
    fn lost_update_flagged() {
        // t2 writes a:2 but read a:0 — it overwrote t1 blindly.
        let h = vec![
            rec(txn(9, 0), &[(1, 0)], &[(1, 1)]),
            rec(txn(10, 0), &[(1, 0)], &[(1, 2)]),
        ];
        let v = check_history(&h).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::LostUpdate { wrote: 2, .. })));
    }

    #[test]
    fn write_skew_cycle_flagged() {
        // Classic write skew: t1 reads a:0,b:0 writes a:1; t2 reads a:0,b:0
        // writes b:1. Each antidepends on the other → rw/rw cycle, even
        // though versions are unique and lineage is intact.
        let h = vec![
            rec(txn(9, 0), &[(1, 0), (2, 0)], &[(1, 1)]),
            rec(txn(10, 0), &[(1, 0), (2, 0)], &[(2, 1)]),
        ];
        let v = check_history(&h).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Cycle { txns } if txns.len() == 2)));
    }

    #[test]
    fn durability_clean_when_acked_writes_survive() {
        let h = vec![
            rec(txn(9, 0), &[(1, 0)], &[(1, 1)]),
            rec(txn(9, 1), &[(1, 1)], &[(1, 2)]),
        ];
        let acked: HashSet<TxnId> = [txn(9, 0), txn(9, 1)].into_iter().collect();
        // One replica caught up, one stale — the max over replicas covers.
        let inventories = vec![vec![(obj(1), 2)], vec![(obj(1), 1)]];
        let s = check_durability(&h, &acked, &inventories).expect("clean");
        assert_eq!(s.acked_commits, 2);
        assert_eq!(s.replicas, 2);
        assert_eq!(s.objects_covered, 1);
    }

    #[test]
    fn durability_unacked_commits_may_be_lost() {
        // The decision was recorded but no ack ever reached the client:
        // every replica losing the write is within contract.
        let h = vec![rec(txn(9, 0), &[(1, 0)], &[(1, 1)])];
        let acked = HashSet::new();
        let inventories = vec![vec![], vec![]];
        assert!(check_durability(&h, &acked, &inventories).is_ok());
    }

    #[test]
    fn durability_lost_ack_flagged() {
        let h = vec![rec(txn(9, 0), &[(1, 0)], &[(1, 1)])];
        let acked: HashSet<TxnId> = [txn(9, 0)].into_iter().collect();
        let inventories = vec![vec![], vec![(obj(1), 0)]];
        let v = check_durability(&h, &acked, &inventories).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::LostAck { version: 1, .. })));
    }

    #[test]
    fn durability_torn_replay_flagged() {
        // A replica holds a:3 but no committed transaction wrote it.
        let h = vec![rec(txn(9, 0), &[(1, 0)], &[(1, 1)])];
        let acked: HashSet<TxnId> = [txn(9, 0)].into_iter().collect();
        let inventories = vec![vec![(obj(1), 1)], vec![(obj(1), 3)]];
        let v = check_durability(&h, &acked, &inventories).unwrap_err();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TornReplay { version: 3, .. })));
    }

    #[test]
    fn log_tracks_acks_separately_from_records() {
        let log = HistoryLog::new();
        log.record(rec(txn(9, 0), &[(1, 0)], &[(1, 1)]));
        assert!(log.acked_snapshot().is_empty(), "decision is not the ack");
        log.record_ack(txn(9, 0));
        assert!(log.acked_snapshot().contains(&txn(9, 0)));
    }

    #[test]
    fn log_records_and_checks() {
        let log = HistoryLog::new();
        assert!(log.is_empty());
        log.record(rec(txn(9, 0), &[(1, 0)], &[(1, 1)]));
        assert_eq!(log.len(), 1);
        assert!(log.check().is_ok());
        log.record(rec(txn(10, 0), &[(1, 0)], &[(1, 1)]));
        assert!(log.check().is_err(), "torn write detected via the log");
        assert_eq!(log.snapshot().len(), 2);
    }
}
