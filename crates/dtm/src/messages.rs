//! The wire protocol between transaction clients and quorum servers.

use acn_simnet::NodeId;
use acn_txir::{ObjectId, ObjectVal};
use std::fmt;

/// Object version number, bumped on every commit. Fresh (never-committed)
/// objects have version 0 on every replica.
pub type Version = u64;

/// Per-client request correlation id. Clients discard stray responses from
/// timed-out earlier requests by matching this.
pub type ReqId = u64;

/// Globally unique transaction identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// The client node running the transaction.
    pub client: NodeId,
    /// Client-local sequence number.
    pub seq: u64,
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn({}:{})", self.client, self.seq)
    }
}

/// A read-set entry presented for incremental validation.
pub type ValidateEntry = (ObjectId, Version);

/// Messages exchanged between clients and quorum servers.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client → read quorum member: fetch the latest copy of `obj` and
    /// re-validate the presented read-set (incremental validation).
    /// `sample` piggybacks a contention query on the existing message —
    /// "meta-data are coupled with existing network messages, which
    /// slightly increases the network transmission delay" (paper §V-C2) —
    /// listing the object classes whose levels the Dynamic Module wants.
    ReadReq {
        /// The requesting transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// The object to fetch.
        obj: ObjectId,
        /// Read-set presented for incremental validation.
        validate: Vec<ValidateEntry>,
        /// Classes whose contention level should ride along on the reply.
        sample: Vec<u16>,
    },
    /// Server → client: the replica's copy, plus any read-set entries this
    /// replica knows to be stale (its version is newer than presented).
    /// `locked` is set when the object is `protected` by an in-flight
    /// commit, in which case `version`/`value` must be ignored. `levels`
    /// answers the request's piggybacked contention sample.
    ReadResp {
        /// Correlation id.
        req: ReqId,
        /// This replica's version of the object.
        version: Version,
        /// This replica's copy of the object.
        value: ObjectVal,
        /// Presented read-set entries this replica knows to be stale.
        invalid: Vec<ObjectId>,
        /// The object is `protected` by an in-flight commit.
        locked: bool,
        /// Piggybacked per-class contention levels (see `ReadReq::sample`).
        levels: Vec<(u16, f64)>,
    },
    /// Phase 1 of 2PC: lock the write-set and validate the read-set.
    PrepareReq {
        /// The committing transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// Full read-set (write-set read versions included).
        validate: Vec<ValidateEntry>,
        /// Objects to be written, with the version the client read.
        writes: Vec<(ObjectId, Version)>,
    },
    /// Server vote. `invalid` lists stale read-set entries (for diagnostics);
    /// a lock conflict yields `vote == false` with `invalid` empty.
    PrepareResp {
        /// Correlation id.
        req: ReqId,
        /// Yes/no vote for phase 2.
        vote: bool,
        /// Stale read-set entries, when the rejection was a validation
        /// failure.
        invalid: Vec<ObjectId>,
    },
    /// Phase 2, commit: apply buffered writes, bump versions, count writes
    /// into the contention window, release locks.
    CommitReq {
        /// The committing transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// `(object, new version, new value)` to install.
        writes: Vec<(ObjectId, Version, ObjectVal)>,
    },
    /// Acknowledges a [`Msg::CommitReq`].
    CommitAck {
        /// Correlation id.
        req: ReqId,
    },
    /// Phase 2, abort: release locks without applying.
    AbortReq {
        /// The aborting transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
    },
    /// Acknowledges a [`Msg::AbortReq`].
    AbortAck {
        /// Correlation id.
        req: ReqId,
    },
    /// Dynamic Module: ask for the contention level of object classes
    /// (identified by `ObjClass::id`).
    ContentionReq {
        /// Correlation id.
        req: ReqId,
        /// Class ids to report on.
        classes: Vec<u16>,
    },
    /// Per-class contention levels from the last complete window:
    /// `levels` from write counts, `abort_levels` from prepare rejections
    /// blamed on each class's objects.
    ContentionResp {
        /// Correlation id.
        req: ReqId,
        /// Per-class write levels.
        levels: Vec<(u16, f64)>,
        /// Per-class abort ratios.
        abort_levels: Vec<(u16, f64)>,
    },
    /// Orderly server termination (cluster shutdown).
    Shutdown,
}

impl Msg {
    /// The correlation id of a *response* message, if it is one.
    pub fn response_req(&self) -> Option<ReqId> {
        match self {
            Msg::ReadResp { req, .. }
            | Msg::PrepareResp { req, .. }
            | Msg::CommitAck { req }
            | Msg::AbortAck { req }
            | Msg::ContentionResp { req, .. } => Some(*req),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_debug_format() {
        let t = TxnId {
            client: NodeId(3),
            seq: 9,
        };
        assert_eq!(format!("{t:?}"), "txn(n3:9)");
    }

    #[test]
    fn response_req_extracts_correlation_ids() {
        assert_eq!(
            Msg::ReadResp {
                req: 5,
                version: 0,
                value: ObjectVal::new(),
                invalid: vec![],
                locked: false,
                levels: vec![]
            }
            .response_req(),
            Some(5)
        );
        assert_eq!(Msg::CommitAck { req: 7 }.response_req(), Some(7));
        assert_eq!(Msg::AbortAck { req: 8 }.response_req(), Some(8));
        assert_eq!(
            Msg::ContentionResp { req: 9, levels: vec![], abort_levels: vec![] }.response_req(),
            Some(9)
        );
        assert_eq!(Msg::Shutdown.response_req(), None);
        assert_eq!(
            Msg::ContentionReq { req: 1, classes: vec![] }.response_req(),
            None,
            "requests are not responses"
        );
    }

    #[test]
    fn txn_ids_order_by_client_then_seq() {
        let a = TxnId { client: NodeId(1), seq: 5 };
        let b = TxnId { client: NodeId(2), seq: 1 };
        assert!(a < b);
    }
}
