//! The wire protocol between transaction clients and quorum servers.

use acn_simnet::NodeId;
use acn_txir::{ObjectId, ObjectVal};
use std::fmt;

/// Object version number, bumped on every commit. Fresh (never-committed)
/// objects have version 0 on every replica.
pub type Version = u64;

/// Per-client request correlation id. Clients discard stray responses from
/// timed-out earlier requests by matching this.
pub type ReqId = u64;

/// Globally unique transaction identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// The client node running the transaction.
    pub client: NodeId,
    /// Client-local sequence number.
    pub seq: u64,
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn({}:{})", self.client, self.seq)
    }
}

/// A read-set entry presented for incremental validation.
pub type ValidateEntry = (ObjectId, Version);

/// One object's copy inside a [`Msg::ReadBatchResp`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRead {
    /// The object this entry answers for.
    pub obj: ObjectId,
    /// This replica's version of the object.
    pub version: Version,
    /// This replica's copy of the object.
    pub value: ObjectVal,
    /// The object is `protected` by an in-flight commit; `version`/`value`
    /// must be ignored.
    pub locked: bool,
}

/// Messages exchanged between clients and quorum servers.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client → read quorum member: fetch the latest copy of `obj` and
    /// re-validate the presented read-set (incremental validation).
    /// `sample` piggybacks a contention query on the existing message —
    /// "meta-data are coupled with existing network messages, which
    /// slightly increases the network transmission delay" (paper §V-C2) —
    /// listing the object classes whose levels the Dynamic Module wants.
    ReadReq {
        /// The requesting transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// The object to fetch.
        obj: ObjectId,
        /// Read-set presented for incremental validation.
        validate: Vec<ValidateEntry>,
        /// Classes whose contention level should ride along on the reply.
        sample: Vec<u16>,
    },
    /// Server → client: the replica's copy, plus any read-set entries this
    /// replica knows to be stale (its version is newer than presented).
    /// `locked` is set when the object is `protected` by an in-flight
    /// commit, in which case `version`/`value` must be ignored. `levels`
    /// answers the request's piggybacked contention sample.
    ReadResp {
        /// Correlation id.
        req: ReqId,
        /// This replica's version of the object.
        version: Version,
        /// This replica's copy of the object.
        value: ObjectVal,
        /// Presented read-set entries this replica knows to be stale.
        invalid: Vec<ObjectId>,
        /// The object is `protected` by an in-flight commit.
        locked: bool,
        /// Piggybacked per-class contention levels (see `ReadReq::sample`).
        levels: Vec<(u16, f64)>,
    },
    /// Client → read quorum member: fetch the latest copies of several
    /// objects in one round trip (the executor's static prefetch pass
    /// batches every open whose object id is known at block entry).
    ///
    /// `validate` carries only the *delta* of the read-set — entries not
    /// yet validated against the slowest member of this quorum, per the
    /// client's per-server watermarks — so the shipped validation payload
    /// grows linearly with the read-set instead of quadratically. The full
    /// read-set is still validated at prepare time, so delta validation
    /// only affects how early a stale read is detected, never safety.
    ReadBatchReq {
        /// The requesting transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// The objects to fetch.
        objs: Vec<ObjectId>,
        /// Read-set delta presented for incremental validation.
        validate: Vec<ValidateEntry>,
        /// Classes whose contention level should ride along on the reply.
        sample: Vec<u16>,
    },
    /// Server → client: one [`BatchRead`] per requested object (same
    /// order), served atomically against the replica's store.
    ReadBatchResp {
        /// Correlation id.
        req: ReqId,
        /// Per-object replies, in request order.
        reads: Vec<BatchRead>,
        /// Presented read-set entries this replica knows to be stale.
        invalid: Vec<ObjectId>,
        /// Piggybacked per-class contention levels.
        levels: Vec<(u16, f64)>,
    },
    /// Phase 1 of 2PC: lock the write-set and validate the read-set.
    PrepareReq {
        /// The committing transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// Full read-set (write-set read versions included).
        validate: Vec<ValidateEntry>,
        /// Objects to be written, with the version the client read.
        writes: Vec<(ObjectId, Version)>,
    },
    /// Server vote. `invalid` lists stale read-set entries; `locked` names
    /// the write-set object a lock conflict rejected on. Both feed the
    /// client's abort attribution: a no-vote with empty `invalid` and
    /// empty `locked` would leave the conflict unattributable.
    PrepareResp {
        /// Correlation id.
        req: ReqId,
        /// Yes/no vote for phase 2.
        vote: bool,
        /// Stale read-set entries, when the rejection was a validation
        /// failure.
        invalid: Vec<ObjectId>,
        /// The already-locked write-set object, when the rejection was a
        /// lock conflict (at most one: locking stops at the first failure).
        locked: Option<ObjectId>,
        /// The replica refused to vote because it is still catching up
        /// after a crash-with-amnesia. Always a no-vote with empty
        /// `invalid`/`locked`; the client must not blame an object and
        /// should retry against a fresh quorum.
        syncing: bool,
        /// The replica refused to vote because its WAL is failing: the
        /// grant could not be made durable, so granting it would risk an
        /// unreplayable decision. Like `syncing`, always a no-vote with
        /// empty `invalid`/`locked` and attributed separately (storage
        /// back-pressure, not data contention).
        wal_refused: bool,
    },
    /// Phase 2, commit: apply buffered writes, bump versions, count writes
    /// into the contention window, release locks.
    CommitReq {
        /// The committing transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
        /// `(object, new version, new value)` to install.
        writes: Vec<(ObjectId, Version, ObjectVal)>,
    },
    /// Acknowledges a [`Msg::CommitReq`].
    CommitAck {
        /// Correlation id.
        req: ReqId,
    },
    /// Phase 2, abort: release locks without applying.
    AbortReq {
        /// The aborting transaction.
        txn: TxnId,
        /// Correlation id.
        req: ReqId,
    },
    /// Acknowledges a [`Msg::AbortReq`].
    AbortAck {
        /// Correlation id.
        req: ReqId,
    },
    /// Dynamic Module: ask for the contention level of object classes
    /// (identified by `ObjClass::id`).
    ContentionReq {
        /// Correlation id.
        req: ReqId,
        /// Class ids to report on.
        classes: Vec<u16>,
    },
    /// Per-class contention levels from the last complete window:
    /// `levels` from write counts, `abort_levels` from prepare rejections
    /// blamed on each class's objects.
    ContentionResp {
        /// Correlation id.
        req: ReqId,
        /// Per-class write levels.
        levels: Vec<(u16, f64)>,
        /// Per-class abort ratios.
        abort_levels: Vec<(u16, f64)>,
    },
    /// Recovering server → peer server: a replica that lost its state to a
    /// crash-with-amnesia asks for a full object/version inventory. The
    /// `incarnation` (bumped on every wipe) lets the requester discard
    /// stale responses to a previous recovery attempt.
    SyncReq {
        /// Correlation id (the recovering server's own counter).
        req: ReqId,
        /// The requester's recovery incarnation this request belongs to.
        incarnation: u64,
    },
    /// Peer server → recovering server: the peer's complete inventory.
    /// Servers that are themselves syncing do not answer — an amnesiac
    /// store full of version-0 entries must never seed another replica.
    SyncResp {
        /// Correlation id, echoed from the [`Msg::SyncReq`].
        req: ReqId,
        /// The requester's incarnation, echoed for staleness filtering.
        incarnation: u64,
        /// `(object, version, value)` for every object the peer holds.
        entries: Vec<(ObjectId, Version, ObjectVal)>,
    },
    /// Recovering server → peer server: a replica that *replayed a WAL*
    /// on restart already holds most of its state; it sends the versions
    /// it has so the peer answers with only the newer/missing objects
    /// (the delta), not the full inventory. Same incarnation-staleness
    /// rule as [`Msg::SyncReq`]; the peer replies with a [`Msg::SyncResp`].
    SyncDeltaReq {
        /// Correlation id (the recovering server's own counter).
        req: ReqId,
        /// The requester's recovery incarnation this request belongs to.
        incarnation: u64,
        /// `(object, version)` the requester already holds.
        known: Vec<(ObjectId, Version)>,
    },
    /// Client → lagging read-quorum member, fire-and-forget: after a
    /// quorum read disagreed on versions, push the winning copy back to
    /// the responders that served an older one. Applied through the same
    /// forward-only [`crate::Store::apply`] as commits, so a concurrent
    /// newer commit can never be regressed. No response message.
    RepairWrite {
        /// Correlation id (unused — there is no reply — but kept for
        /// uniform tracing).
        req: ReqId,
        /// `(object, version, value)` copies to install if newer.
        writes: Vec<(ObjectId, Version, ObjectVal)>,
    },
    /// Server → client: the replica cannot serve reads because it is
    /// catching up after a crash-with-amnesia. The client treats the
    /// responder as unavailable for this round (it does not count toward
    /// the quorum) without waiting out the RPC timeout.
    Syncing {
        /// Correlation id, echoed from the refused request.
        req: ReqId,
    },
    /// Orderly server termination (cluster shutdown).
    Shutdown,
    /// A client request wrapped with its causal span context. Servers
    /// unwrap before handling and record their queue-dwell / handling
    /// spans as children of `ctx.span` (the client's round span).
    ///
    /// [`Msg::kind`] and [`Msg::response_req`] delegate to the inner
    /// message, so chaos classification — and therefore every seeded fault
    /// schedule — is identical whether tracing is on or off. Responses are
    /// never wrapped: the client already owns the round span.
    Traced {
        /// Trace id + parent (round) span id.
        ctx: acn_obs::TraceCtx,
        /// The wrapped request.
        inner: Box<Msg>,
    },
}

/// Message-kind constants for the chaos layer's (src, dst, kind) filters.
/// Stable small integers so fault plans can be written against them.
pub mod kind {
    use acn_simnet::MsgKind;

    /// [`super::Msg::ReadReq`]
    pub const READ_REQ: MsgKind = 0;
    /// [`super::Msg::ReadResp`]
    pub const READ_RESP: MsgKind = 1;
    /// [`super::Msg::ReadBatchReq`]
    pub const READ_BATCH_REQ: MsgKind = 2;
    /// [`super::Msg::ReadBatchResp`]
    pub const READ_BATCH_RESP: MsgKind = 3;
    /// [`super::Msg::PrepareReq`]
    pub const PREPARE_REQ: MsgKind = 4;
    /// [`super::Msg::PrepareResp`]
    pub const PREPARE_RESP: MsgKind = 5;
    /// [`super::Msg::CommitReq`]
    pub const COMMIT_REQ: MsgKind = 6;
    /// [`super::Msg::CommitAck`]
    pub const COMMIT_ACK: MsgKind = 7;
    /// [`super::Msg::AbortReq`]
    pub const ABORT_REQ: MsgKind = 8;
    /// [`super::Msg::AbortAck`]
    pub const ABORT_ACK: MsgKind = 9;
    /// [`super::Msg::ContentionReq`]
    pub const CONTENTION_REQ: MsgKind = 10;
    /// [`super::Msg::ContentionResp`]
    pub const CONTENTION_RESP: MsgKind = 11;
    /// [`super::Msg::Shutdown`]
    pub const SHUTDOWN: MsgKind = 12;
    /// [`super::Msg::SyncReq`]
    pub const SYNC_REQ: MsgKind = 13;
    /// [`super::Msg::SyncResp`]
    pub const SYNC_RESP: MsgKind = 14;
    /// [`super::Msg::RepairWrite`]
    pub const REPAIR_WRITE: MsgKind = 15;
    /// [`super::Msg::Syncing`]
    pub const SYNCING: MsgKind = 16;
    /// [`super::Msg::SyncDeltaReq`]
    pub const SYNC_DELTA_REQ: MsgKind = 17;
}

impl Msg {
    /// This message's [`acn_simnet::MsgKind`] for chaos-rule filtering.
    pub fn kind(&self) -> acn_simnet::MsgKind {
        match self {
            Msg::ReadReq { .. } => kind::READ_REQ,
            Msg::ReadResp { .. } => kind::READ_RESP,
            Msg::ReadBatchReq { .. } => kind::READ_BATCH_REQ,
            Msg::ReadBatchResp { .. } => kind::READ_BATCH_RESP,
            Msg::PrepareReq { .. } => kind::PREPARE_REQ,
            Msg::PrepareResp { .. } => kind::PREPARE_RESP,
            Msg::CommitReq { .. } => kind::COMMIT_REQ,
            Msg::CommitAck { .. } => kind::COMMIT_ACK,
            Msg::AbortReq { .. } => kind::ABORT_REQ,
            Msg::AbortAck { .. } => kind::ABORT_ACK,
            Msg::ContentionReq { .. } => kind::CONTENTION_REQ,
            Msg::ContentionResp { .. } => kind::CONTENTION_RESP,
            Msg::SyncReq { .. } => kind::SYNC_REQ,
            Msg::SyncDeltaReq { .. } => kind::SYNC_DELTA_REQ,
            Msg::SyncResp { .. } => kind::SYNC_RESP,
            Msg::RepairWrite { .. } => kind::REPAIR_WRITE,
            Msg::Syncing { .. } => kind::SYNCING,
            Msg::Shutdown => kind::SHUTDOWN,
            Msg::Traced { inner, .. } => inner.kind(),
        }
    }

    /// The correlation id of a *response* message, if it is one.
    pub fn response_req(&self) -> Option<ReqId> {
        match self {
            Msg::ReadResp { req, .. }
            | Msg::ReadBatchResp { req, .. }
            | Msg::PrepareResp { req, .. }
            | Msg::CommitAck { req }
            | Msg::AbortAck { req }
            | Msg::ContentionResp { req, .. }
            | Msg::SyncResp { req, .. }
            | Msg::Syncing { req } => Some(*req),
            Msg::Traced { inner, .. } => inner.response_req(),
            _ => None,
        }
    }

    /// Approximate serialised size in bytes, for the simulator's byte
    /// accounting ([`acn_simnet::NetStatsSnapshot::bytes_sent`]). The
    /// estimate uses fixed per-field costs (8-byte versions and ids, 12-byte
    /// object ids, 16 bytes per populated object field) — precise enough to
    /// compare read-path variants, which is all the simulator needs.
    pub fn wire_bytes(&self) -> u64 {
        const HDR: u64 = 16; // tag + txn/req ids common to all messages
        const OID: u64 = 12; // class + index
        const VE: u64 = OID + 8; // validate entry: object id + version
        const LVL: u64 = 10; // class id + level
        fn val_bytes(v: &ObjectVal) -> u64 {
            8 + 16 * v.len() as u64
        }
        match self {
            Msg::ReadReq {
                validate, sample, ..
            } => HDR + OID + VE * validate.len() as u64 + 2 * sample.len() as u64,
            Msg::ReadResp {
                value,
                invalid,
                levels,
                ..
            } => {
                HDR + 9 + val_bytes(value) + OID * invalid.len() as u64 + LVL * levels.len() as u64
            }
            Msg::ReadBatchReq {
                objs,
                validate,
                sample,
                ..
            } => {
                HDR + OID * objs.len() as u64 + VE * validate.len() as u64 + 2 * sample.len() as u64
            }
            Msg::ReadBatchResp {
                reads,
                invalid,
                levels,
                ..
            } => {
                HDR + reads
                    .iter()
                    .map(|r| OID + 9 + val_bytes(&r.value))
                    .sum::<u64>()
                    + OID * invalid.len() as u64
                    + LVL * levels.len() as u64
            }
            Msg::PrepareReq {
                validate, writes, ..
            } => HDR + VE * (validate.len() + writes.len()) as u64,
            Msg::PrepareResp {
                invalid, locked, ..
            } => HDR + 3 + OID * (invalid.len() as u64 + u64::from(locked.is_some())),
            Msg::CommitReq { writes, .. }
            | Msg::SyncResp {
                entries: writes, ..
            }
            | Msg::RepairWrite { writes, .. } => {
                HDR + writes
                    .iter()
                    .map(|(_, _, v)| VE + val_bytes(v))
                    .sum::<u64>()
            }
            Msg::CommitAck { .. } | Msg::AbortAck { .. } => HDR,
            Msg::AbortReq { .. } => HDR,
            Msg::ContentionReq { classes, .. } => HDR + 2 * classes.len() as u64,
            Msg::ContentionResp {
                levels,
                abort_levels,
                ..
            } => HDR + LVL * (levels.len() + abort_levels.len()) as u64,
            Msg::SyncReq { .. } => HDR + 8,
            Msg::SyncDeltaReq { known, .. } => HDR + 8 + VE * known.len() as u64,
            Msg::Syncing { .. } => HDR,
            Msg::Shutdown => HDR,
            // Two span ids ride along with the inner message.
            Msg::Traced { inner, .. } => inner.wire_bytes() + 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_debug_format() {
        let t = TxnId {
            client: NodeId(3),
            seq: 9,
        };
        assert_eq!(format!("{t:?}"), "txn(n3:9)");
    }

    #[test]
    fn response_req_extracts_correlation_ids() {
        assert_eq!(
            Msg::ReadResp {
                req: 5,
                version: 0,
                value: ObjectVal::new(),
                invalid: vec![],
                locked: false,
                levels: vec![]
            }
            .response_req(),
            Some(5)
        );
        assert_eq!(
            Msg::ReadBatchResp {
                req: 6,
                reads: vec![],
                invalid: vec![],
                levels: vec![]
            }
            .response_req(),
            Some(6)
        );
        assert_eq!(Msg::CommitAck { req: 7 }.response_req(), Some(7));
        assert_eq!(Msg::AbortAck { req: 8 }.response_req(), Some(8));
        assert_eq!(
            Msg::ContentionResp {
                req: 9,
                levels: vec![],
                abort_levels: vec![]
            }
            .response_req(),
            Some(9)
        );
        assert_eq!(Msg::Shutdown.response_req(), None);
        assert_eq!(
            Msg::ContentionReq {
                req: 1,
                classes: vec![]
            }
            .response_req(),
            None,
            "requests are not responses"
        );
        assert_eq!(
            Msg::SyncResp {
                req: 10,
                incarnation: 1,
                entries: vec![]
            }
            .response_req(),
            Some(10)
        );
        assert_eq!(
            Msg::Syncing { req: 11 }.response_req(),
            Some(11),
            "a sync refusal correlates with the refused request"
        );
        assert_eq!(
            Msg::SyncReq {
                req: 1,
                incarnation: 1
            }
            .response_req(),
            None
        );
        assert_eq!(
            Msg::SyncDeltaReq {
                req: 1,
                incarnation: 1,
                known: vec![]
            }
            .response_req(),
            None,
            "a delta sync probe is a request, not a response"
        );
        assert_eq!(
            Msg::RepairWrite {
                req: 1,
                writes: vec![]
            }
            .response_req(),
            None,
            "repair writes are fire-and-forget"
        );
    }

    #[test]
    fn recovery_messages_have_distinct_kinds() {
        let t = TxnId {
            client: NodeId(0),
            seq: 1,
        };
        let all = [
            Msg::SyncReq {
                req: 1,
                incarnation: 1,
            },
            Msg::SyncDeltaReq {
                req: 1,
                incarnation: 1,
                known: vec![],
            },
            Msg::SyncResp {
                req: 1,
                incarnation: 1,
                entries: vec![],
            },
            Msg::RepairWrite {
                req: 1,
                writes: vec![],
            },
            Msg::Syncing { req: 1 },
            Msg::PrepareReq {
                txn: t,
                req: 1,
                validate: vec![],
                writes: vec![],
            },
        ];
        let kinds: std::collections::HashSet<_> = all.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), all.len(), "kinds must not collide");
        assert_eq!(all[0].kind(), kind::SYNC_REQ);
        assert_eq!(all[1].kind(), kind::SYNC_DELTA_REQ);
        assert_eq!(all[4].kind(), kind::SYNCING);
        // Sync payload cost scales with the inventory like a commit's.
        use acn_txir::ObjClass;
        let obj = |i| ObjectId::new(ObjClass::new(1, "c"), i);
        let resp = |n: u64| Msg::SyncResp {
            req: 1,
            incarnation: 1,
            entries: (0..n).map(|i| (obj(i), i, ObjectVal::new())).collect(),
        };
        let per_entry = resp(2).wire_bytes() - resp(1).wire_bytes();
        assert!(per_entry >= 20, "entries are not free: {per_entry}");
        // A delta probe pays per known-version entry (object id + version),
        // trading probe size for a delta-sized response.
        let probe = |n: u64| Msg::SyncDeltaReq {
            req: 1,
            incarnation: 1,
            known: (0..n).map(|i| (obj(i), i)).collect(),
        };
        assert_eq!(probe(3).wire_bytes() - probe(1).wire_bytes(), 2 * 20);
    }

    #[test]
    fn wire_bytes_scales_with_payload() {
        use acn_txir::ObjClass;
        let t = TxnId {
            client: NodeId(0),
            seq: 1,
        };
        let obj = |i| ObjectId::new(ObjClass::new(1, "c"), i);
        let batch = |n: u64, v: usize| Msg::ReadBatchReq {
            txn: t,
            req: 1,
            objs: (0..n).map(obj).collect(),
            validate: (0..v as u64).map(|i| (obj(i), 0)).collect(),
            sample: vec![],
        };
        // Doubling the object list or the validate delta grows the
        // estimate by exactly the per-entry cost.
        let base = batch(4, 0).wire_bytes();
        assert_eq!(batch(8, 0).wire_bytes() - base, 4 * 12);
        assert_eq!(batch(4, 3).wire_bytes() - base, 3 * 20);
        // A batch of n objects costs less than n single-object requests.
        let single = Msg::ReadReq {
            txn: t,
            req: 1,
            obj: obj(0),
            validate: vec![],
            sample: vec![],
        }
        .wire_bytes();
        assert!(batch(8, 0).wire_bytes() < 8 * single);
    }

    #[test]
    fn traced_wrapper_is_transparent_to_chaos_classification() {
        let t = TxnId {
            client: NodeId(0),
            seq: 1,
        };
        let inner = Msg::PrepareReq {
            txn: t,
            req: 3,
            validate: vec![],
            writes: vec![],
        };
        let plain_kind = inner.kind();
        let plain_bytes = inner.wire_bytes();
        let wrapped = Msg::Traced {
            ctx: acn_obs::TraceCtx { trace: 7, span: 9 },
            inner: Box::new(inner),
        };
        assert_eq!(
            wrapped.kind(),
            plain_kind,
            "same chaos fate with tracing on or off"
        );
        assert_eq!(wrapped.wire_bytes(), plain_bytes + 16);
        assert_eq!(wrapped.response_req(), None);
    }

    #[test]
    fn txn_ids_order_by_client_then_seq() {
        let a = TxnId {
            client: NodeId(1),
            seq: 5,
        };
        let b = TxnId {
            client: NodeId(2),
            seq: 1,
        };
        assert!(a < b);
    }
}
