//! A reusable pool of client handles for scheduled (batch) execution.
//!
//! The closed-loop driver builds one [`DtmClient`] per worker thread and
//! lets the thread own it for the whole run. The batch scheduler has a
//! different shape: a coordinator hands transactions to whichever worker's
//! conflict indegree drained first, and the per-run configuration (history
//! log, tracer, piggyback classes) must survive across *every* transaction
//! a worker executes. Rebuilding a handle per scheduled transaction would
//! re-allocate the endpoint receive state and silently drop the tracer ring
//! and client stats each time; the pool builds each slot's handle **once**
//! at startup, leases it to the executing worker, and gives the whole set
//! back at shutdown so stats and span rings can be drained.

use crate::client::DtmClient;
use crate::cluster::Cluster;
use parking_lot::{Mutex, MutexGuard};

/// Slot-indexed pool of [`DtmClient`] handles, built once per run.
pub struct ClientPool {
    slots: Vec<Mutex<DtmClient>>,
}

impl ClientPool {
    /// Build handles for client slots `0..slots` of `cluster`. Each slot's
    /// endpoint is created exactly once — the per-slot receive queue and a
    /// slot's transaction-id band both assume a single live handle.
    pub fn new(cluster: &Cluster, slots: usize) -> Self {
        ClientPool {
            slots: (0..slots).map(|i| Mutex::new(cluster.client(i))).collect(),
        }
    }

    /// Number of pooled slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Apply per-slot startup configuration (history log, tracer,
    /// piggyback classes) before workers start executing.
    pub fn configure(&self, mut f: impl FnMut(usize, &mut DtmClient)) {
        for (i, slot) in self.slots.iter().enumerate() {
            f(i, &mut slot.lock());
        }
    }

    /// Lease slot `i`'s handle for one scheduled transaction (or a whole
    /// worker loop). The guard's lifetime bounds the lease; the handle —
    /// with its accumulated stats, backoff state and tracer — stays in the
    /// pool for the next lease.
    pub fn lease(&self, i: usize) -> MutexGuard<'_, DtmClient> {
        self.slots[i].lock()
    }

    /// Tear the pool down, yielding every handle in slot order so the
    /// caller can drain tracers and client stats.
    pub fn into_clients(self) -> Vec<DtmClient> {
        self.slots.into_iter().map(Mutex::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use acn_txir::{FieldId, ObjClass, ObjectId, Value};

    const ACCT: ObjClass = ObjClass::new(0, "acct");
    const BAL: FieldId = FieldId(0);

    #[test]
    fn handles_persist_across_leases() {
        let cluster = Cluster::start(ClusterConfig::test(4, 2));
        let pool = ClientPool::new(&cluster, 2);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        // Two transactions through the same leased slot: the second sees
        // the first's committed write, and the handle's stats accumulate.
        {
            let mut c = pool.lease(0);
            let mut ctx = crate::context::TxnCtx::begin(&mut c);
            ctx.open(&mut c, ObjectId::new(ACCT, 1), true).unwrap();
            ctx.set_field(ObjectId::new(ACCT, 1), BAL, Value::Int(7));
            ctx.commit(&mut c).unwrap();
        }
        {
            let mut c = pool.lease(0);
            let mut ctx = crate::context::TxnCtx::begin(&mut c);
            ctx.open(&mut c, ObjectId::new(ACCT, 1), false).unwrap();
            assert_eq!(ctx.get_field(ObjectId::new(ACCT, 1), BAL), Value::Int(7));
        }
        let clients = pool.into_clients();
        assert_eq!(clients.len(), 2);
        assert!(
            clients[0].stats().commits >= 1,
            "stats survived the lease boundary"
        );
        cluster.shutdown();
    }
}
