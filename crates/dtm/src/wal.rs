//! Durable write-ahead log for crash-restart recovery.
//!
//! Each server appends a [`WalRecord`] at every 2PC *decision point* —
//! prepare grants, commit applications, aborts — plus an incarnation bump
//! whenever it re-identifies itself after a wipe or restart. On restart the
//! log is replayed deterministically by [`replay`]: apply is idempotent
//! (keyed by `(TxnId, ReqId)`, the same key as the live dedup cache), so a
//! record that survives both in the log and in a retried client request is
//! applied exactly once. A torn tail — the frame being written when the
//! crash hit — is detected by the length prefix + checksum and truncated;
//! everything before it is whole by construction (appends are
//! frame-atomic in the ring backend and flushed in order in the file
//! backend).
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc: u64 LE] [payload: len bytes]
//! ```
//!
//! `crc` is FNV-1a 64 over the payload (hand-rolled — no external deps).
//! Decoding stops at the first frame whose header is short, whose payload
//! is short, whose checksum mismatches, or whose payload fails structural
//! decode; the byte offset of that frame is the truncation point.
//!
//! Object classes are encoded by id only: [`ObjClass`] equality and
//! hashing are by id (the name is diagnostics), so decode materialises a
//! `"wal"` placeholder name and round-trip *equality* still holds.

use crate::messages::{Msg, ReqId, TxnId, Version};
use crate::store::Store;
use acn_simnet::NodeId;
use acn_txir::{FieldId, ObjClass, ObjectId, ObjectVal, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One durable decision. The three 2PC records carry the `(txn, req)`
/// dedup key; replay uses it to apply each decision at most once and to
/// reconstruct the reply the server would have sent, so post-restart
/// client retries hit the dedup cache instead of re-executing.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Phase 1 voted yes: `objs` were locked for `txn`.
    PrepareGrant {
        /// The transaction that locked.
        txn: TxnId,
        /// Request id of the `PrepareReq` (dedup key half).
        req: ReqId,
        /// The objects locked on this replica.
        objs: Vec<ObjectId>,
    },
    /// Phase 2 commit: `writes` were applied forward-only.
    CommitApply {
        /// The committing transaction.
        txn: TxnId,
        /// Request id of the `CommitReq`.
        req: ReqId,
        /// `(object, version, value)` triples exactly as applied.
        writes: Vec<(ObjectId, Version, ObjectVal)>,
    },
    /// Phase 2 abort: `txn`'s locks were released.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
        /// Request id of the `AbortReq`.
        req: ReqId,
    },
    /// The server adopted a new incarnation (restart replay or amnesia).
    IncarnationBump {
        /// The incarnation adopted.
        incarnation: u64,
    },
}

const TAG_PREPARE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_INCARNATION: u8 = 4;

const VAL_UNIT: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_BOOL: u8 = 2;
const VAL_STR: u8 = 3;

/// Frame header: `len: u32` + `crc: u64`.
pub const FRAME_HDR: usize = 12;

/// FNV-1a 64 over `bytes` — the frame checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Sequential little-endian reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn put_txn(buf: &mut Vec<u8>, txn: TxnId) {
    put_u32(buf, txn.client.0);
    put_u64(buf, txn.seq);
}

fn get_txn(c: &mut Cursor<'_>) -> Option<TxnId> {
    Some(TxnId {
        client: NodeId(c.u32()?),
        seq: c.u64()?,
    })
}

fn put_obj(buf: &mut Vec<u8>, obj: ObjectId) {
    put_u16(buf, obj.class.id);
    put_u64(buf, obj.index);
}

fn get_obj(c: &mut Cursor<'_>) -> Option<ObjectId> {
    let id = c.u16()?;
    let index = c.u64()?;
    // Class names are diagnostics; identity (Eq/Hash/Ord) is by id.
    Some(ObjectId::new(ObjClass::new(id, "wal"), index))
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Unit => buf.push(VAL_UNIT),
        Value::Int(i) => {
            buf.push(VAL_INT);
            put_u64(buf, *i as u64);
        }
        Value::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(*b as u8);
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Option<Value> {
    match c.u8()? {
        VAL_UNIT => Some(Value::Unit),
        VAL_INT => Some(Value::Int(c.u64()? as i64)),
        VAL_BOOL => match c.u8()? {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        },
        VAL_STR => {
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            let s = std::str::from_utf8(raw).ok()?;
            Some(Value::str(s))
        }
        _ => None,
    }
}

fn put_val(buf: &mut Vec<u8>, val: &ObjectVal) {
    put_u32(buf, val.len() as u32);
    for (field, v) in val.iter() {
        put_u16(buf, field.0);
        put_value(buf, v);
    }
}

fn get_val(c: &mut Cursor<'_>) -> Option<ObjectVal> {
    let n = c.u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let field = FieldId(c.u16()?);
        pairs.push((field, get_value(c)?));
    }
    Some(ObjectVal::from_fields(pairs))
}

impl WalRecord {
    /// Encode the record payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            WalRecord::PrepareGrant { txn, req, objs } => {
                buf.push(TAG_PREPARE);
                put_txn(&mut buf, *txn);
                put_u64(&mut buf, *req);
                put_u32(&mut buf, objs.len() as u32);
                for obj in objs {
                    put_obj(&mut buf, *obj);
                }
            }
            WalRecord::CommitApply { txn, req, writes } => {
                buf.push(TAG_COMMIT);
                put_txn(&mut buf, *txn);
                put_u64(&mut buf, *req);
                put_u32(&mut buf, writes.len() as u32);
                for (obj, version, value) in writes {
                    put_obj(&mut buf, *obj);
                    put_u64(&mut buf, *version);
                    put_val(&mut buf, value);
                }
            }
            WalRecord::Abort { txn, req } => {
                buf.push(TAG_ABORT);
                put_txn(&mut buf, *txn);
                put_u64(&mut buf, *req);
            }
            WalRecord::IncarnationBump { incarnation } => {
                buf.push(TAG_INCARNATION);
                put_u64(&mut buf, *incarnation);
            }
        }
        buf
    }

    /// Decode a payload produced by [`encode`](Self::encode). `None` on
    /// any structural violation (bad tag, short buffer, trailing bytes).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            TAG_PREPARE => {
                let txn = get_txn(&mut c)?;
                let req = c.u64()?;
                let n = c.u32()? as usize;
                let mut objs = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    objs.push(get_obj(&mut c)?);
                }
                WalRecord::PrepareGrant { txn, req, objs }
            }
            TAG_COMMIT => {
                let txn = get_txn(&mut c)?;
                let req = c.u64()?;
                let n = c.u32()? as usize;
                let mut writes = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let obj = get_obj(&mut c)?;
                    let version = c.u64()?;
                    writes.push((obj, version, get_val(&mut c)?));
                }
                WalRecord::CommitApply { txn, req, writes }
            }
            TAG_ABORT => {
                let txn = get_txn(&mut c)?;
                let req = c.u64()?;
                WalRecord::Abort { txn, req }
            }
            TAG_INCARNATION => WalRecord::IncarnationBump {
                incarnation: c.u64()?,
            },
            _ => return None,
        };
        if !c.done() {
            return None; // trailing garbage inside a checksummed frame
        }
        Some(rec)
    }

    /// Append this record as a whole frame (`len` + `crc` + payload).
    pub fn frame_into(&self, out: &mut Vec<u8>) {
        let payload = self.encode();
        put_u32(out, payload.len() as u32);
        put_u64(out, checksum(&payload));
        out.extend_from_slice(&payload);
    }
}

/// Decode a byte stream of frames. Returns the records decoded, the byte
/// length of the whole-frame prefix, and whether a torn/corrupt tail was
/// cut (`true` when `good_len < bytes.len()`).
pub fn decode_stream(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some(hdr) = bytes.get(at..at + FRAME_HDR) else {
            break; // short header: torn mid-header
        };
        let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(hdr[4..12].try_into().unwrap());
        let Some(payload) = bytes.get(at + FRAME_HDR..at + FRAME_HDR + len) else {
            break; // short payload: torn mid-frame
        };
        if checksum(payload) != crc {
            break; // bit rot or interleaved torn write
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break; // checksum ok but structurally invalid — treat as torn
        };
        records.push(rec);
        at += FRAME_HDR + len;
    }
    (records, at, at < bytes.len())
}

/// What a backend hands back on [`Persistence::load`].
#[derive(Debug, Default)]
pub struct LoadedLog {
    /// Every whole record, in append order.
    pub records: Vec<WalRecord>,
    /// 1 when a torn/corrupt tail was detected and truncated, else 0.
    pub torn_tails_truncated: u64,
}

/// A storage-layer failure surfaced by a [`Persistence`] backend. The
/// server does not panic on these: it degrades to refusing new prepares
/// (the decision would not be durable) until a later sync succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The backing device failed the write, flush, or sync.
    Io,
    /// The backing device is out of space (ENOSPC).
    NoSpace,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io => write!(f, "wal i/o error"),
            WalError::NoSpace => write!(f, "wal device out of space"),
        }
    }
}

impl std::error::Error for WalError {}

/// When an appended WAL record becomes *durable* — and therefore when the
/// server may release the ack that depends on it. The contract checked by
/// the lost-ack checker is: a reply covered by a WAL record is sent only
/// once that record has been synced (except under `Buffered`, which
/// deliberately weakens the contract to measure its cost).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Sync after every appended record before releasing its ack:
    /// strongest guarantee, one sync per decision.
    #[default]
    EveryRecord,
    /// Batch appended records and sync when either bound trips; acks for
    /// the batch are parked until the covering sync completes. Same
    /// guarantee as [`DurabilityMode::EveryRecord`] for every *released*
    /// ack, at a fraction of the syncs.
    GroupCommit {
        /// Sync once this many records are dirty.
        max_records: usize,
        /// Sync once the oldest dirty record has waited this long.
        max_delay: Duration,
    },
    /// Never sync from the ack path (the backend still flushes whenever
    /// it likes). Acks may outrun durability: an acked commit can be
    /// lost with the unsynced suffix. The honest upper bound for the
    /// sync-mode ablation.
    Buffered,
}

/// A durable decision log. `append` must be frame-atomic from the point
/// of view of a later `load` on the *same* backend instance family: the
/// ring never exposes partial frames, and the file backend truncates the
/// torn tail on load. `append` stages the record; `sync` makes every
/// staged record durable — a record is only guaranteed to survive a
/// crash once a covering `sync` returned `Ok`.
pub trait Persistence: Send {
    /// Append one record to the log. On `Err` the record was *not*
    /// appended; the caller must treat the covered decision as
    /// non-durable.
    fn append(&mut self, rec: &WalRecord) -> Result<(), WalError>;
    /// Make every appended record durable. Idempotent when clean.
    fn sync(&mut self) -> Result<(), WalError>;
    /// Read back every whole record, truncating any torn tail in the
    /// backing store so subsequent appends extend a clean log.
    fn load(&mut self) -> LoadedLog;
    /// Destroy the log (crash-with-amnesia loses the disk too).
    fn reset(&mut self);
}

/// Default [`MemLog`] frame capacity. Old frames are dropped FIFO past
/// this; a restarted server covers the gap via the peer delta sync, so a
/// bounded ring is safe (if conservative) for tests.
pub const MEMLOG_CAPACITY: usize = 1 << 16;

/// In-memory ring backend for tests: frames survive a simulated restart
/// (the `Cluster` owns the log across the fault) but not process death.
#[derive(Debug, Default)]
pub struct MemLog {
    frames: VecDeque<Vec<u8>>,
    capacity: usize,
}

impl MemLog {
    /// An empty ring with the default capacity.
    pub fn new() -> Self {
        MemLog {
            frames: VecDeque::new(),
            capacity: MEMLOG_CAPACITY,
        }
    }

    /// An empty ring bounded to `capacity` frames.
    pub fn with_capacity(capacity: usize) -> Self {
        MemLog {
            frames: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame is held.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

impl Persistence for MemLog {
    fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let mut frame = Vec::new();
        rec.frame_into(&mut frame);
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        // Memory is "durable" for the simulated-restart lifetime.
        Ok(())
    }

    fn load(&mut self) -> LoadedLog {
        let mut out = LoadedLog::default();
        for frame in &self.frames {
            let (mut recs, _, torn) = decode_stream(frame);
            debug_assert!(!torn, "ring frames are whole by construction");
            out.records.append(&mut recs);
        }
        out
    }

    fn reset(&mut self) {
        self.frames.clear();
    }
}

/// Append-only file backend: length-prefixed checksummed frames, flushed
/// per append. `load` truncates the file at the first torn/corrupt frame.
#[derive(Debug)]
pub struct FileLog {
    path: PathBuf,
    file: std::fs::File,
}

impl FileLog {
    /// Open (creating if absent) the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        Ok(FileLog { path, file })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(e: std::io::Error) -> WalError {
    if e.raw_os_error() == Some(28) {
        // ENOSPC
        WalError::NoSpace
    } else {
        WalError::Io
    }
}

impl Persistence for FileLog {
    fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let mut frame = Vec::new();
        rec.frame_into(&mut frame);
        // A failed or partial write is a torn tail: the checksum catches
        // it on the next load. The error still propagates so the server
        // stops acking decisions it cannot make durable.
        self.file.seek(SeekFrom::End(0)).map_err(io_err)?;
        self.file.write_all(&frame).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.flush().map_err(io_err)?;
        self.file.sync_data().map_err(io_err)
    }

    fn load(&mut self) -> LoadedLog {
        let mut bytes = Vec::new();
        if self.file.seek(SeekFrom::Start(0)).is_err() || self.file.read_to_end(&mut bytes).is_err()
        {
            return LoadedLog::default();
        }
        let (records, good_len, torn) = decode_stream(&bytes);
        if torn {
            let _ = self.file.set_len(good_len as u64);
            let _ = self.file.seek(SeekFrom::End(0));
        }
        LoadedLog {
            records,
            torn_tails_truncated: torn as u64,
        }
    }

    fn reset(&mut self) {
        let _ = self.file.set_len(0);
        let _ = self.file.seek(SeekFrom::Start(0));
    }
}

/// Storage fault model for [`FaultLog`], driven by the same seeded-hash
/// discipline as the network chaos layer: every fault fate is a pure
/// function of `(seed, op counter)`, so a schedule replays exactly from
/// its seed.
#[derive(Debug, Clone)]
pub struct FaultLogConfig {
    /// Fault-schedule seed.
    pub seed: u64,
    /// Probability an append fails with [`WalError::Io`].
    pub append_error_p: f64,
    /// Probability a sync fails with [`WalError::Io`] (staged records
    /// stay staged and the next sync retries them).
    pub sync_error_p: f64,
    /// Stall injected into every successful sync (fsync latency / a
    /// device hiccup). Zero disables.
    pub sync_stall: Duration,
    /// Total bytes the device accepts before appends fail with
    /// [`WalError::NoSpace`]. `None` = unbounded.
    pub byte_budget: Option<u64>,
    /// On [`Persistence::load`] (= the crash-restart path), drop every
    /// record appended since the last successful sync — the physical
    /// meaning of an unsynced page cache dying with the machine.
    pub lose_unsynced_on_restart: bool,
}

impl Default for FaultLogConfig {
    fn default() -> Self {
        FaultLogConfig {
            seed: 0,
            append_error_p: 0.0,
            sync_error_p: 0.0,
            sync_stall: Duration::ZERO,
            byte_budget: None,
            lose_unsynced_on_restart: false,
        }
    }
}

// Same splitmix64 finalizer + unit-interval mapping the simnet chaos
// layer uses for per-message fates (kept local: they are private there).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const FAULT_SALT_APPEND: u64 = 0x5741_4c5f_4150_5044; // "WAL_APPD"
const FAULT_SALT_SYNC: u64 = 0x5741_4c5f_5359_4e43; // "WAL_SYNC"

/// Fault-injecting wrapper over any [`Persistence`] backend. Appends are
/// *staged* in memory and only reach the inner backend on a successful
/// `sync` — which is exactly what an OS page cache does between
/// `write(2)` and `fsync(2)` — so `lose_unsynced_on_restart` can model
/// crash-time loss of the unsynced suffix even over backends (like
/// [`MemLog`]) that have no real page cache.
pub struct FaultLog {
    inner: Box<dyn Persistence>,
    cfg: FaultLogConfig,
    /// Records appended since the last successful sync.
    staged: VecDeque<WalRecord>,
    /// Monotone op counter: one draw per append / sync attempt.
    ops: u64,
    /// Cumulative frame bytes accepted, checked against `byte_budget`.
    bytes_accepted: u64,
    /// Staged records dropped at load: the unsynced suffix under
    /// `lose_unsynced_on_restart`, plus anything the inner backend
    /// refused when a healthy load flushed the stage.
    suffix_records_lost: u64,
}

impl FaultLog {
    /// Wrap `inner` with the fault model in `cfg`.
    pub fn new(inner: Box<dyn Persistence>, cfg: FaultLogConfig) -> Self {
        FaultLog {
            inner,
            cfg,
            staged: VecDeque::new(),
            ops: 0,
            bytes_accepted: 0,
            suffix_records_lost: 0,
        }
    }

    /// Records staged but not yet durable.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Records dropped so far at load (suffix loss or a failed flush).
    pub fn suffix_records_lost(&self) -> u64 {
        self.suffix_records_lost
    }

    fn draw(&mut self, salt: u64) -> f64 {
        self.ops += 1;
        unit(mix64(self.cfg.seed ^ mix64(self.ops) ^ salt))
    }

    /// Push every staged record into the inner backend.
    fn flush_staged(&mut self) -> Result<(), WalError> {
        while let Some(rec) = self.staged.front() {
            self.inner.append(rec)?;
            self.staged.pop_front();
        }
        Ok(())
    }
}

impl Persistence for FaultLog {
    fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        if self.cfg.append_error_p > 0.0 && self.draw(FAULT_SALT_APPEND) < self.cfg.append_error_p {
            return Err(WalError::Io);
        }
        let mut frame = Vec::new();
        rec.frame_into(&mut frame);
        if let Some(budget) = self.cfg.byte_budget {
            if self.bytes_accepted + frame.len() as u64 > budget {
                return Err(WalError::NoSpace);
            }
        }
        self.bytes_accepted += frame.len() as u64;
        self.staged.push_back(rec.clone());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        if !self.cfg.sync_stall.is_zero() {
            std::thread::sleep(self.cfg.sync_stall);
        }
        if self.cfg.sync_error_p > 0.0 && self.draw(FAULT_SALT_SYNC) < self.cfg.sync_error_p {
            return Err(WalError::Io);
        }
        self.flush_staged()?;
        self.inner.sync()
    }

    fn load(&mut self) -> LoadedLog {
        if self.cfg.lose_unsynced_on_restart {
            // The crash takes the page cache with it: only synced
            // records survive into the replayed log.
            self.suffix_records_lost += self.staged.len() as u64;
            self.staged.clear();
        } else if self.flush_staged().is_err() {
            // A healthy restart flushes the stage, but the inner backend
            // can refuse mid-flush; whatever it refused is as lost as a
            // dropped suffix, so count it — silently omitting records
            // whose append was acknowledged with Ok would make the loss
            // invisible to the checker. (`flush_staged` pops each record
            // as it lands, so what remains staged is exactly the loss.)
            self.suffix_records_lost += self.staged.len() as u64;
            self.staged.clear();
        }
        self.inner.load()
    }

    fn reset(&mut self) {
        self.staged.clear();
        self.inner.reset();
    }
}

/// The deterministic product of replaying a log prefix.
#[derive(Debug, Default)]
pub struct ReplayState {
    /// The store as of the last whole record.
    pub store: Store,
    /// Prepared-but-undecided transactions and the objects they lock.
    pub prepared: HashMap<TxnId, Vec<ObjectId>>,
    /// `(dedup key, reply)` pairs in log order — the replies the server
    /// sent before crashing, for rebuilding the dedup cache so retries
    /// are answered without re-execution.
    pub replies: Vec<((TxnId, ReqId), Msg)>,
    /// Highest incarnation recorded in the log.
    pub incarnation: u64,
    /// Records applied (idempotent duplicates are skipped, not counted).
    pub records: u64,
}

/// Replay `records` into a fresh state. Deterministic and idempotent:
/// the same log always produces the same state, and a `(txn, req)` pair
/// appearing twice applies once — so replaying `log + log` equals
/// replaying `log`, and any *prefix* of a valid log is itself a valid
/// state (the property the WAL proptests pin down).
pub fn replay(records: impl IntoIterator<Item = WalRecord>) -> ReplayState {
    let mut st = ReplayState::default();
    let mut seen: HashSet<(TxnId, ReqId)> = HashSet::new();
    for rec in records {
        match rec {
            WalRecord::PrepareGrant { txn, req, objs } => {
                if !seen.insert((txn, req)) {
                    continue;
                }
                for obj in &objs {
                    st.store.try_lock(*obj, txn);
                }
                st.prepared.insert(txn, objs);
                st.replies.push((
                    (txn, req),
                    Msg::PrepareResp {
                        req,
                        vote: true,
                        invalid: vec![],
                        locked: None,
                        syncing: false,
                        wal_refused: false,
                    },
                ));
                st.records += 1;
            }
            WalRecord::CommitApply { txn, req, writes } => {
                if !seen.insert((txn, req)) {
                    continue;
                }
                for (obj, version, value) in writes {
                    st.store.apply(obj, version, value, txn);
                }
                st.prepared.remove(&txn);
                st.replies.push(((txn, req), Msg::CommitAck { req }));
                st.records += 1;
            }
            WalRecord::Abort { txn, req } => {
                if !seen.insert((txn, req)) {
                    continue;
                }
                if let Some(objs) = st.prepared.remove(&txn) {
                    for obj in objs {
                        st.store.unlock(obj, txn);
                    }
                }
                st.replies.push(((txn, req), Msg::AbortAck { req }));
                st.records += 1;
            }
            WalRecord::IncarnationBump { incarnation } => {
                st.incarnation = st.incarnation.max(incarnation);
                st.records += 1;
            }
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const BAL: FieldId = FieldId(0);

    fn txn(seq: u64) -> TxnId {
        TxnId {
            client: NodeId(10),
            seq,
        }
    }

    fn val(v: i64) -> ObjectVal {
        ObjectVal::from_fields([(BAL, Value::Int(v))])
    }

    fn sample_records() -> Vec<WalRecord> {
        let obj = ObjectId::new(BRANCH, 3);
        vec![
            WalRecord::PrepareGrant {
                txn: txn(1),
                req: 7,
                objs: vec![obj, ObjectId::new(BRANCH, 4)],
            },
            WalRecord::CommitApply {
                txn: txn(1),
                req: 8,
                writes: vec![(obj, 1, val(42))],
            },
            WalRecord::PrepareGrant {
                txn: txn(2),
                req: 9,
                objs: vec![obj],
            },
            WalRecord::Abort {
                txn: txn(2),
                req: 10,
            },
            WalRecord::IncarnationBump { incarnation: 3 },
        ]
    }

    #[test]
    fn codec_round_trips_every_record_kind() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload), Some(rec));
        }
        // All value kinds survive, including strings.
        let rich = WalRecord::CommitApply {
            txn: txn(9),
            req: 99,
            writes: vec![(
                ObjectId::new(BRANCH, 0),
                5,
                ObjectVal::from_fields([
                    (FieldId(0), Value::Unit),
                    (FieldId(1), Value::Int(-7)),
                    (FieldId(2), Value::Bool(true)),
                    (FieldId(3), Value::str("warehouse")),
                ]),
            )],
        };
        assert_eq!(WalRecord::decode(&rich.encode()), Some(rich));
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut payload = WalRecord::Abort {
            txn: txn(1),
            req: 2,
        }
        .encode();
        payload.push(0);
        assert_eq!(WalRecord::decode(&payload), None);
        assert_eq!(WalRecord::decode(&[200]), None);
        assert_eq!(WalRecord::decode(&[]), None);
    }

    #[test]
    fn stream_stops_at_corrupt_frame() {
        let mut bytes = Vec::new();
        for rec in sample_records() {
            rec.frame_into(&mut bytes);
        }
        let (recs, good, torn) = decode_stream(&bytes);
        assert_eq!(recs, sample_records());
        assert_eq!(good, bytes.len());
        assert!(!torn);

        // Flip one payload byte of the final frame: the stream must keep
        // everything before it and report a torn tail.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let (recs, good, torn) = decode_stream(&corrupt);
        assert_eq!(recs.len(), sample_records().len() - 1);
        assert!(good < corrupt.len());
        assert!(torn);
    }

    #[test]
    fn memlog_round_trips_and_bounds_capacity() {
        let mut log = MemLog::with_capacity(3);
        for rec in sample_records() {
            log.append(&rec).unwrap();
        }
        log.sync().unwrap();
        assert_eq!(log.len(), 3);
        let loaded = log.load();
        assert_eq!(loaded.torn_tails_truncated, 0);
        assert_eq!(loaded.records, sample_records()[2..].to_vec());
        log.reset();
        assert!(log.is_empty());
        assert!(log.load().records.is_empty());
    }

    #[test]
    fn filelog_survives_reopen_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "acn-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server-0.wal");
        {
            let mut log = FileLog::open(&path).unwrap();
            log.reset();
            for rec in sample_records() {
                log.append(&rec).unwrap();
            }
            log.sync().unwrap();
        }
        // Tear the tail: chop 3 bytes off the final frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let mut log = FileLog::open(&path).unwrap();
        let loaded = log.load();
        assert_eq!(loaded.torn_tails_truncated, 1);
        assert_eq!(loaded.records, sample_records()[..4].to_vec());

        // The torn tail was physically truncated: appending after the
        // load yields a clean log with the new record following record 4.
        log.append(&WalRecord::IncarnationBump { incarnation: 9 })
            .unwrap();
        let reloaded = log.load();
        assert_eq!(reloaded.torn_tails_truncated, 0);
        assert_eq!(reloaded.records.len(), 5);
        assert_eq!(
            reloaded.records[4],
            WalRecord::IncarnationBump { incarnation: 9 }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reconstructs_store_prepared_and_replies() {
        let st = replay(sample_records());
        let obj = ObjectId::new(BRANCH, 3);
        let (version, value, lock) = st.store.read(obj);
        assert_eq!(version, 1);
        assert_eq!(value.get(BAL), Some(&Value::Int(42)));
        assert_eq!(lock, None, "commit and abort must both have unlocked");
        // txn(1)'s grant also locked object 4 but its commit never wrote
        // it: apply() only releases what it writes, so the lock survives
        // replay exactly as it survived live — the TTL sweep reclaims it.
        assert_eq!(st.store.lock_holder(ObjectId::new(BRANCH, 4)), Some(txn(1)));
        assert!(st.prepared.is_empty());
        assert_eq!(st.incarnation, 3);
        assert_eq!(st.records, 5);
        assert_eq!(st.replies.len(), 4);
    }

    #[test]
    fn replay_is_idempotent_per_dedup_key() {
        let once = replay(sample_records());
        let twice = replay(sample_records().into_iter().chain(sample_records()));
        assert_eq!(once.store.digest(), twice.store.digest());
        assert_eq!(once.records, twice.records - 1, "only the bump re-applies");
        assert_eq!(once.replies.len(), twice.replies.len());
    }

    #[test]
    fn fault_log_drops_unsynced_suffix_on_restart_load() {
        let mut log = FaultLog::new(
            Box::new(MemLog::new()),
            FaultLogConfig {
                lose_unsynced_on_restart: true,
                ..FaultLogConfig::default()
            },
        );
        let recs = sample_records();
        // First three records synced, last two staged only.
        for rec in &recs[..3] {
            log.append(rec).unwrap();
        }
        log.sync().unwrap();
        for rec in &recs[3..] {
            log.append(rec).unwrap();
        }
        assert_eq!(log.staged_len(), 2);
        let loaded = log.load();
        assert_eq!(loaded.records, recs[..3].to_vec(), "suffix lost");
        assert_eq!(log.suffix_records_lost(), 2);
        // Without suffix loss, load flushes the stage instead.
        let mut keep = FaultLog::new(Box::new(MemLog::new()), FaultLogConfig::default());
        for rec in &recs {
            keep.append(rec).unwrap();
        }
        assert_eq!(keep.load().records, recs);
    }

    /// Inner backend that accepts a fixed number of appends, then
    /// refuses with [`WalError::Io`] — for driving flush failures.
    struct QuotaLog {
        inner: MemLog,
        accepts: usize,
    }

    impl Persistence for QuotaLog {
        fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
            if self.accepts == 0 {
                return Err(WalError::Io);
            }
            self.accepts -= 1;
            self.inner.append(rec)
        }

        fn sync(&mut self) -> Result<(), WalError> {
            self.inner.sync()
        }

        fn load(&mut self) -> LoadedLog {
            self.inner.load()
        }

        fn reset(&mut self) {
            self.inner.reset();
        }
    }

    #[test]
    fn fault_log_counts_records_a_failed_flush_drops_at_load() {
        // Healthy-restart load (no suffix loss configured), but the inner
        // backend dies one record into the flush: the record that landed
        // is loaded, the two it refused are counted as lost rather than
        // silently vanishing.
        let mut log = FaultLog::new(
            Box::new(QuotaLog {
                inner: MemLog::new(),
                accepts: 1,
            }),
            FaultLogConfig::default(),
        );
        let recs = sample_records();
        for rec in &recs[..3] {
            log.append(rec).unwrap();
        }
        let loaded = log.load();
        assert_eq!(loaded.records, recs[..1].to_vec());
        assert_eq!(log.suffix_records_lost(), 2);
        assert_eq!(log.staged_len(), 0, "nothing left half-staged");
    }

    #[test]
    fn fault_log_errors_are_seeded_and_enospc_trips_on_budget() {
        let cfg = FaultLogConfig {
            seed: 7,
            append_error_p: 0.5,
            ..FaultLogConfig::default()
        };
        let run = |cfg: FaultLogConfig| {
            let mut log = FaultLog::new(Box::new(MemLog::new()), cfg);
            (0..32)
                .map(|i| {
                    log.append(&WalRecord::IncarnationBump { incarnation: i })
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        let a = run(cfg.clone());
        assert_eq!(a, run(cfg), "same seed, same fault schedule");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));

        let mut small = FaultLog::new(
            Box::new(MemLog::new()),
            FaultLogConfig {
                byte_budget: Some(64),
                ..FaultLogConfig::default()
            },
        );
        let mut saw_nospace = false;
        for i in 0..16 {
            if small.append(&WalRecord::IncarnationBump { incarnation: i })
                == Err(WalError::NoSpace)
            {
                saw_nospace = true;
            }
        }
        assert!(saw_nospace, "byte budget must surface ENOSPC");
    }

    #[test]
    fn fault_log_failed_sync_keeps_records_staged_for_retry() {
        // sync_error_p = 1 fails every sync; staged records must survive
        // so a later (clean) sync can still land them.
        let mut log = FaultLog::new(
            Box::new(MemLog::new()),
            FaultLogConfig {
                sync_error_p: 1.0,
                ..FaultLogConfig::default()
            },
        );
        log.append(&WalRecord::IncarnationBump { incarnation: 1 })
            .unwrap();
        assert_eq!(log.sync(), Err(WalError::Io));
        assert_eq!(log.staged_len(), 1, "failed sync must not lose records");
        log.cfg.sync_error_p = 0.0;
        log.sync().unwrap();
        assert_eq!(log.staged_len(), 0);
        assert_eq!(log.load().records.len(), 1);
    }

    #[test]
    fn replay_of_undecided_prepare_keeps_the_lock() {
        let obj = ObjectId::new(BRANCH, 8);
        let st = replay([WalRecord::PrepareGrant {
            txn: txn(5),
            req: 1,
            objs: vec![obj],
        }]);
        assert_eq!(st.store.lock_holder(obj), Some(txn(5)));
        assert_eq!(st.prepared.get(&txn(5)), Some(&vec![obj]));
    }
}
