//! Server-side contention monitoring (the Dynamic Module's server half).
//!
//! "We approximate the contention level of a shared object according to the
//! number of write operations occurred on that object since the last
//! observation. This information is maintained by quorum nodes. […] Moving
//! from one time window to the next one implies resetting the counters."
//!
//! Counters live per concrete object; queries aggregate per class because
//! that is the granularity at which a transaction *template* can act (a
//! template knows it will open "a District", not which one). The class
//! level is the **mean write count per written object** — a class with a
//! few heavily-written objects (District) scores high, a class with many
//! rarely-written objects (Customer) scores low, which is exactly the
//! hot-spot signal Steps 1–3 need.

use acn_txir::ObjectId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Window rotation configuration.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Length of one observation window. The paper uses 10 s windows on a
    /// real cluster; scaled-down simulations use 50–500 ms.
    pub window: Duration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: Duration::from_millis(200),
        }
    }
}

/// Rotating per-object write *and abort* counters with per-class
/// aggregation — "run-time parameters such as objects' write and abort
/// ratios" (§V-B, Dynamic Module).
#[derive(Debug)]
pub struct ContentionWindow {
    cfg: WindowConfig,
    window_start: Instant,
    /// Writes per object in the window being filled.
    current: HashMap<ObjectId, u64>,
    /// Aborts attributed per object in the window being filled (the
    /// objects whose staleness or lock made a prepare vote no).
    current_aborts: HashMap<ObjectId, u64>,
    /// Per-class write aggregate of the last complete window:
    /// (sum, distinct).
    completed: HashMap<u16, (u64, u64)>,
    /// Per-class abort aggregate of the last complete window.
    completed_aborts: HashMap<u16, (u64, u64)>,
}

impl ContentionWindow {
    /// Start counting with the given window length.
    pub fn new(cfg: WindowConfig) -> Self {
        ContentionWindow {
            cfg,
            window_start: Instant::now(),
            current: HashMap::new(),
            current_aborts: HashMap::new(),
            completed: HashMap::new(),
            completed_aborts: HashMap::new(),
        }
    }

    fn aggregate(objs: &mut HashMap<ObjectId, u64>) -> HashMap<u16, (u64, u64)> {
        let mut agg: HashMap<u16, (u64, u64)> = HashMap::new();
        for (obj, count) in objs.drain() {
            let e = agg.entry(obj.class.id).or_insert((0, 0));
            e.0 += count;
            e.1 += 1;
        }
        agg
    }

    /// Rotate if the current window has elapsed. Called internally by
    /// `record_write`/`class_level`, public for tests driving time manually.
    pub fn maybe_rotate(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.window_start);
        if elapsed < self.cfg.window {
            return;
        }
        let win_ns = self.cfg.window.as_nanos().max(1);
        let windows = (elapsed.as_nanos() / win_ns).min(u32::MAX as u128) as u32;
        if windows >= 2 {
            // Two or more windows passed: whatever sits in `current` was
            // collected in a window that ended at least one full (silent)
            // window ago — it is not the "last complete window" any more.
            // Publishing it would hand consumers stale hot-spot data, so
            // drop it and report silence instead.
            self.current.clear();
            self.current_aborts.clear();
            self.completed.clear();
            self.completed_aborts.clear();
        } else {
            self.completed = Self::aggregate(&mut self.current);
            self.completed_aborts = Self::aggregate(&mut self.current_aborts);
        }
        // Advance on the window grid rather than jumping to `now`: a
        // rotation is triggered by the first event *after* a boundary, and
        // restarting the window at that event's timestamp would slip the
        // grid forward by the event's offset on every rotation. Sampled
        // spans and the driver's per-interval rows share one interval
        // clock only because the grid holds still.
        self.window_start += self.cfg.window * windows;
    }

    /// Record one committed write to `obj`.
    pub fn record_write(&mut self, obj: ObjectId, now: Instant) {
        self.maybe_rotate(now);
        *self.current.entry(obj).or_insert(0) += 1;
    }

    /// Record that `obj` caused a prepare rejection (stale version or lock
    /// conflict).
    pub fn record_abort(&mut self, obj: ObjectId, now: Instant) {
        self.maybe_rotate(now);
        *self.current_aborts.entry(obj).or_insert(0) += 1;
    }

    fn level_from(agg: &HashMap<u16, (u64, u64)>, class: u16) -> f64 {
        match agg.get(&class) {
            Some(&(sum, distinct)) if distinct > 0 => sum as f64 / distinct as f64,
            _ => 0.0,
        }
    }

    /// Contention level of a class from the last complete window: mean
    /// writes per written object, 0.0 for classes without writes.
    pub fn class_level(&mut self, class: u16, now: Instant) -> f64 {
        self.maybe_rotate(now);
        Self::level_from(&self.completed, class)
    }

    /// Abort ratio of a class from the last complete window: mean aborts
    /// per blamed object.
    pub fn class_abort_level(&mut self, class: u16, now: Instant) -> f64 {
        self.maybe_rotate(now);
        Self::level_from(&self.completed_aborts, class)
    }

    /// Write count of one object in the window being filled (tests and
    /// diagnostics; decision-making uses completed windows).
    pub fn current_object_count(&self, obj: ObjectId) -> u64 {
        self.current.get(&obj).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::ObjClass;

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");

    fn win(ms: u64) -> ContentionWindow {
        ContentionWindow::new(WindowConfig {
            window: Duration::from_millis(ms),
        })
    }

    #[test]
    fn writes_accumulate_in_current_window() {
        let mut w = win(1000);
        let t0 = Instant::now();
        let obj = ObjectId::new(BRANCH, 1);
        w.record_write(obj, t0);
        w.record_write(obj, t0);
        assert_eq!(w.current_object_count(obj), 2);
        // Not yet rotated ⇒ completed window empty ⇒ level 0.
        assert_eq!(w.class_level(BRANCH.id, t0), 0.0);
    }

    #[test]
    fn rotation_publishes_class_means() {
        let mut w = win(100);
        let t0 = Instant::now();
        // Branch 1 written 6×, branch 2 written 2× ⇒ mean 4.
        for _ in 0..6 {
            w.record_write(ObjectId::new(BRANCH, 1), t0);
        }
        for _ in 0..2 {
            w.record_write(ObjectId::new(BRANCH, 2), t0);
        }
        // 4 distinct accounts written once each ⇒ mean 1.
        for i in 0..4 {
            w.record_write(ObjectId::new(ACCOUNT, i), t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(w.class_level(BRANCH.id, t1), 4.0);
        assert_eq!(w.class_level(ACCOUNT.id, t1), 1.0);
    }

    #[test]
    fn rotation_resets_counters() {
        let mut w = win(100);
        let t0 = Instant::now();
        let obj = ObjectId::new(BRANCH, 1);
        w.record_write(obj, t0);
        let t1 = t0 + Duration::from_millis(150);
        w.maybe_rotate(t1);
        assert_eq!(w.current_object_count(obj), 0, "current window reset");
        // Second rotation with an empty window clears the published level.
        let t2 = t1 + Duration::from_millis(150);
        assert_eq!(w.class_level(BRANCH.id, t2), 0.0);
    }

    #[test]
    fn unknown_class_reads_zero() {
        let mut w = win(100);
        assert_eq!(w.class_level(42, Instant::now()), 0.0);
        assert_eq!(w.class_abort_level(42, Instant::now()), 0.0);
    }

    #[test]
    fn abort_counters_aggregate_like_writes() {
        let mut w = win(100);
        let t0 = Instant::now();
        // Branch 1 blamed 4×, branch 2 blamed 2× ⇒ mean 3.
        for _ in 0..4 {
            w.record_abort(ObjectId::new(BRANCH, 1), t0);
        }
        for _ in 0..2 {
            w.record_abort(ObjectId::new(BRANCH, 2), t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(w.class_abort_level(BRANCH.id, t1), 3.0);
        // Writes stay independent.
        assert_eq!(w.class_level(BRANCH.id, t1), 0.0);
    }

    #[test]
    fn no_rotation_before_window_elapses() {
        let mut w = win(10_000);
        let t0 = Instant::now();
        w.record_write(ObjectId::new(BRANCH, 1), t0);
        w.maybe_rotate(t0 + Duration::from_millis(10));
        assert_eq!(w.current_object_count(ObjectId::new(BRANCH, 1)), 1);
    }

    #[test]
    fn idle_gap_does_not_leak_stale_window() {
        let mut w = win(100);
        let t0 = Instant::now();
        w.record_write(ObjectId::new(BRANCH, 1), t0);
        // A long idle gap: two rotations worth of silence.
        let t1 = t0 + Duration::from_millis(150);
        assert!(
            w.class_level(BRANCH.id, t1) > 0.0,
            "first rotation publishes"
        );
        let t2 = t1 + Duration::from_millis(500);
        assert_eq!(w.class_level(BRANCH.id, t2), 0.0, "silence clears it");

        // Regression: data pending in `current` across a multi-window gap
        // must be dropped at the next rotation, not published as the "last
        // complete window" — that window ended several silent windows ago.
        w.record_write(ObjectId::new(BRANCH, 1), t2);
        w.record_abort(ObjectId::new(BRANCH, 1), t2);
        let t3 = t2 + Duration::from_millis(500);
        assert_eq!(
            w.class_level(BRANCH.id, t3),
            0.0,
            "stale writes are not republished after a gap"
        );
        assert_eq!(
            w.class_abort_level(BRANCH.id, t3),
            0.0,
            "stale aborts are not republished after a gap"
        );
        assert_eq!(
            w.current_object_count(ObjectId::new(BRANCH, 1)),
            0,
            "stale current counters are discarded, not carried forward"
        );

        // Exactly one window late (elapsed in [window, 2·window) from the
        // grid-aligned window start) still publishes: the data genuinely is
        // the last complete window. t3 sits 50 ms into its grid window, so
        // 100 ms later is 150 ms past the boundary — one window late.
        w.record_write(ObjectId::new(BRANCH, 1), t3);
        let t4 = t3 + Duration::from_millis(100);
        assert!(w.class_level(BRANCH.id, t4) > 0.0, "on-time data publishes");
    }

    #[test]
    fn rotation_grid_does_not_drift_with_late_events() {
        let mut w = win(100);
        let t0 = Instant::now();
        w.record_write(ObjectId::new(BRANCH, 1), t0);
        // The first event after the boundary arrives 90 ms late. The
        // rotation must advance the grid to the boundary (t0 + 100 ms),
        // not restart the window at the event's own timestamp.
        let t1 = t0 + Duration::from_millis(190);
        assert!(w.class_level(BRANCH.id, t1) > 0.0, "first window publishes");
        // 150 ms into the grid window that began at t0 + 100 ms: this must
        // rotate again (publishing an empty window). Under drift — window
        // restarted at t0 + 190 ms — we would still be mid-window here and
        // the stale level would survive.
        let t2 = t0 + Duration::from_millis(250);
        assert_eq!(w.class_level(BRANCH.id, t2), 0.0, "grid stays aligned");
    }
}
