//! Cluster bring-up: spawn server threads, hand out clients.

use crate::client::{ClientConfig, DtmClient};
use crate::contention::WindowConfig;
use crate::messages::Msg;
use crate::server::{Server, ServerStats, SyncConfig, DEFAULT_PREPARED_TTL};
use crate::wal::{DurabilityMode, FaultLog, FaultLogConfig, FileLog, MemLog, Persistence};
use acn_obs::SpanCollector;
use acn_quorum::{DaryTree, LevelQuorums, ReadLevelPolicy};
use acn_simnet::{FaultPlan, LatencyModel, Network, NodeId};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which durable-log backend each server gets (see [`crate::Persistence`]).
#[derive(Debug, Clone, Default)]
pub enum PersistenceMode {
    /// Per-server in-memory ring (the default): survives a simulated
    /// [`Cluster::fail_server_restart`] — the server thread keeps owning
    /// the log across the fault — but not process death. Right for tests.
    #[default]
    Memory,
    /// Append-only file log per server at `dir/server-{rank}.wal`,
    /// length-prefixed checksummed frames. Survives real process death.
    File(PathBuf),
}

/// Cluster shape and protocol parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of quorum servers (node ids `0..servers`).
    pub servers: usize,
    /// Number of client slots (node ids `servers..servers+clients`).
    pub clients: usize,
    /// Tree arity for quorum construction (the paper uses 3).
    pub arity: usize,
    /// Read-quorum level policy.
    pub read_policy: ReadLevelPolicy,
    /// Per-message network latency model.
    pub latency: LatencyModel,
    /// Contention-window length on servers.
    pub window: WindowConfig,
    /// Protocol knobs applied to every client.
    pub client_cfg: ClientConfig,
    /// Prepared-entry TTL applied to every server. Must comfortably exceed
    /// the clients' worst-case phase-2 latency
    /// (`rpc_timeout × (quorum_retries + 1)` plus backoffs): sweeping a
    /// *live* client's locks lets another transaction slip a commit in
    /// between, after which version monotonicity silently discards the
    /// first client's phase-2 writes on this replica — a torn commit the
    /// history checker will flag.
    pub prepared_ttl: Duration,
    /// Shared sink for server-side spans. `None` (the default) leaves the
    /// servers span-free; when set, every server records inbox-dwell /
    /// handling / sync-refusal spans for requests that arrive wrapped in
    /// [`Msg::Traced`].
    pub spans: Option<Arc<SpanCollector>>,
    /// Durable-log backend per server (write-ahead decision log replayed
    /// on crash-restart).
    pub persistence: PersistenceMode,
    /// When servers release 2PC acks relative to the WAL (default:
    /// [`DurabilityMode::EveryRecord`] — sync before every ack).
    pub durability: DurabilityMode,
    /// Storage fault injection: when set, every server's WAL backend is
    /// wrapped in a [`FaultLog`] with this configuration (the seed is
    /// decorrelated per rank so replicas don't fail in lockstep).
    pub wal_faults: Option<FaultLogConfig>,
}

impl ClusterConfig {
    /// A small deterministic cluster for tests: zero latency, 1 server tree
    /// of `servers` nodes.
    pub fn test(servers: usize, clients: usize) -> Self {
        ClusterConfig {
            servers,
            clients,
            arity: 3,
            read_policy: ReadLevelPolicy::Deepest,
            latency: LatencyModel::Zero,
            window: WindowConfig::default(),
            client_cfg: ClientConfig::default(),
            prepared_ttl: DEFAULT_PREPARED_TTL,
            spans: None,
            persistence: PersistenceMode::default(),
            durability: DurabilityMode::default(),
            wal_faults: None,
        }
    }

    /// The paper's test-bed shape: 10 servers, ternary tree, LAN latency.
    pub fn paper(clients: usize) -> Self {
        ClusterConfig {
            servers: 10,
            clients,
            arity: 3,
            read_policy: ReadLevelPolicy::Deepest,
            latency: LatencyModel::lan(),
            window: WindowConfig::default(),
            client_cfg: ClientConfig::default(),
            prepared_ttl: DEFAULT_PREPARED_TTL,
            spans: None,
            persistence: PersistenceMode::default(),
            durability: DurabilityMode::default(),
            wal_faults: None,
        }
    }
}

/// A running cluster: server threads plus the shared network. Clients are
/// created with [`Cluster::client`] and moved into workload threads.
pub struct Cluster {
    cfg: ClusterConfig,
    net: Network<Msg>,
    quorums: LevelQuorums,
    handles: Vec<JoinHandle<ServerStats>>,
}

impl Cluster {
    /// Start `cfg.servers` server threads.
    pub fn start(cfg: ClusterConfig) -> Cluster {
        let net: Network<Msg> = Network::new(cfg.servers + cfg.clients, cfg.latency.clone());
        let quorums =
            LevelQuorums::with_policy(DaryTree::new(cfg.servers, cfg.arity), cfg.read_policy);
        let handles = (0..cfg.servers)
            .map(|rank| {
                let endpoint = net.endpoint(NodeId(rank as u32));
                let mut server = Server::new(cfg.window);
                server.set_prepared_ttl(cfg.prepared_ttl);
                server.set_sync_config(SyncConfig {
                    quorums: quorums.clone(),
                    rank,
                    servers: cfg.servers,
                });
                if let Some(spans) = &cfg.spans {
                    server.set_span_collector(spans.clone());
                }
                let wal: Box<dyn Persistence> = match &cfg.persistence {
                    PersistenceMode::Memory => Box::new(MemLog::new()),
                    PersistenceMode::File(dir) => {
                        std::fs::create_dir_all(dir).expect("create WAL directory");
                        Box::new(
                            FileLog::open(dir.join(format!("server-{rank}.wal")))
                                .expect("open server WAL"),
                        )
                    }
                };
                let wal: Box<dyn Persistence> = match &cfg.wal_faults {
                    Some(faults) => {
                        let mut faults = faults.clone();
                        // Decorrelate the per-replica fault streams: the
                        // same base seed must not make every server's disk
                        // fail on the same operation index.
                        faults.seed ^= (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        Box::new(FaultLog::new(wal, faults))
                    }
                    None => wal,
                };
                server.set_persistence(wal);
                server.set_durability(cfg.durability.clone());
                std::thread::Builder::new()
                    .name(format!("qr-server-{rank}"))
                    .spawn(move || server.run(endpoint))
                    .expect("spawn server thread")
            })
            .collect();
        Cluster {
            cfg,
            net,
            quorums,
            handles,
        }
    }

    /// The shared network (fault injection, stats).
    pub fn net(&self) -> &Network<Msg> {
        &self.net
    }

    /// The configuration the cluster was started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Build the client for slot `i` (0-based). Each slot must be used by
    /// at most one thread at a time.
    pub fn client(&self, i: usize) -> DtmClient {
        assert!(i < self.cfg.clients, "client slot {i} out of range");
        let node = NodeId((self.cfg.servers + i) as u32);
        DtmClient::new(
            self.net.clone(),
            self.net.endpoint(node),
            self.quorums.clone(),
            self.cfg.client_cfg,
        )
    }

    /// Fail server `rank` (dropped messages, no service).
    pub fn fail_server(&self, rank: usize) {
        assert!(rank < self.cfg.servers);
        self.net.fail(NodeId(rank as u32));
    }

    /// Crash server `rank` *with amnesia*: besides dropping its messages,
    /// the replica wipes its store, prepared table and dedup cache, and —
    /// once recovered — must catch up from a read quorum of peers before it
    /// serves reads or votes in prepares again.
    pub fn fail_server_amnesia(&self, rank: usize) {
        assert!(rank < self.cfg.servers);
        self.net.fail_amnesia(NodeId(rank as u32));
    }

    /// Crash server `rank` *keeping its durable log*: its messages drop
    /// and — once recovered — the replica replays its WAL, reconstructs
    /// its store, prepared table and dedup cache, and fetches only the
    /// writes it missed from peers (delta sync) before serving again.
    pub fn fail_server_restart(&self, rank: usize) {
        assert!(rank < self.cfg.servers);
        self.net.fail_restart(NodeId(rank as u32));
    }

    /// Recover server `rank`.
    pub fn recover_server(&self, rank: usize) {
        assert!(rank < self.cfg.servers);
        self.net.recover(NodeId(rank as u32));
    }

    /// Install a chaos plan on the cluster network, classifying messages by
    /// [`Msg::kind`] so the plan's (src, dst, kind) rules apply to protocol
    /// message types.
    pub fn install_chaos(&self, plan: &FaultPlan) {
        self.net.set_chaos(plan.clone(), Msg::kind);
    }

    /// Remove the installed chaos plan.
    pub fn clear_chaos(&self) {
        self.net.clear_chaos();
    }

    /// Partition the cluster: `side_servers` (ranks) and `side_clients`
    /// (slots) form one side, everyone else the other. Both directions of
    /// every cross-side link fail until [`Cluster::heal_partition`].
    pub fn partition(&self, side_servers: &[usize], side_clients: &[usize]) {
        let mut side: Vec<NodeId> = Vec::new();
        let mut rest: Vec<NodeId> = Vec::new();
        for rank in 0..self.cfg.servers {
            if side_servers.contains(&rank) {
                side.push(NodeId(rank as u32));
            } else {
                rest.push(NodeId(rank as u32));
            }
        }
        for slot in 0..self.cfg.clients {
            let node = NodeId((self.cfg.servers + slot) as u32);
            if side_clients.contains(&slot) {
                side.push(node);
            } else {
                rest.push(node);
            }
        }
        self.net.partition(&[side, rest]);
    }

    /// Heal every failed link (partitions included).
    pub fn heal_partition(&self) {
        self.net.heal_all_links();
    }

    /// Orderly shutdown: stop every server and collect their stats.
    pub fn shutdown(self) -> Vec<ServerStats> {
        // A failed server cannot receive Shutdown, a failed link or a
        // lingering chaos plan could eat it; clear all faults first so
        // every thread can exit.
        self.net.clear_chaos();
        self.net.heal_all_links();
        for rank in 0..self.cfg.servers {
            self.net.recover(NodeId(rank as u32));
        }
        // Any endpoint works as a control channel; node 0 always exists.
        let ctl = self.net.endpoint(NodeId(0));
        for rank in 0..self.cfg.servers {
            ctl.send(NodeId(rank as u32), Msg::Shutdown);
        }
        let stats = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("server thread panicked"))
            .collect();
        self.net.shutdown();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_starts_and_stops() {
        let c = Cluster::start(ClusterConfig::test(4, 1));
        let stats = c.shutdown();
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| *s == ServerStats::default()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn client_slot_bounds_checked() {
        let c = Cluster::start(ClusterConfig::test(1, 1));
        let _ = c.client(5);
        // (cluster leaks on panic; fine in a should_panic test)
    }

    #[test]
    fn paper_config_shape() {
        let cfg = ClusterConfig::paper(20);
        assert_eq!(cfg.servers, 10);
        assert_eq!(cfg.clients, 20);
        assert_eq!(cfg.arity, 3);
    }
}
