//! The quorum server: request handling and the service loop.

use crate::contention::{ContentionWindow, WindowConfig};
use crate::messages::{Msg, ReqId, TxnId, Version};
use crate::store::{Store, StoreDigest};
use crate::wal::{replay, DurabilityMode, Persistence, WalRecord};
use acn_obs::{RawSpan, SpanCollector, SpanKind, TraceCtx, FLAG_ROLLED_BACK};
use acn_quorum::LevelQuorums;
use acn_simnet::{Endpoint, NodeId, RecvError};
use acn_txir::ObjectId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters a server reports on shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Read requests served.
    pub reads: u64,
    /// Prepare requests processed.
    pub prepares: u64,
    /// Prepares that voted no.
    pub prepare_rejects: u64,
    /// Commit requests applied.
    pub commits: u64,
    /// Abort requests processed.
    pub aborts: u64,
    /// Explicit contention queries answered.
    pub contention_queries: u64,
    /// Batched read rounds served (objects are also counted in `reads`).
    pub batched_reads: u64,
    /// Prepared transactions whose locks were reclaimed because the client
    /// never finished phase 2 within the prepare TTL.
    pub expired_prepares: u64,
    /// Retried 2PC requests answered from the dedup cache instead of being
    /// re-executed (duplicate (txn, req) Prepare/Commit/Abort).
    pub dedup_hits: u64,
    /// Amnesia wipes this replica performed (state lost, catch-up begun).
    pub amnesia_wipes: u64,
    /// Prepare votes refused because this replica was still catching up.
    pub sync_vote_refusals: u64,
    /// Read rounds refused ([`Msg::Syncing`] sent) while catching up.
    pub sync_read_refusals: u64,
    /// Objects whose copy moved forward while absorbing peer inventories.
    pub sync_objects_received: u64,
    /// Inventories served to recovering peers.
    pub syncs_served: u64,
    /// Catch-up rounds completed (responders covered a read quorum).
    pub syncs_completed: u64,
    /// Client repair writes received (messages, not objects).
    pub repair_writes_received: u64,
    /// Repaired objects that actually advanced this replica's copy.
    pub repair_writes_applied: u64,
    /// Crash-restart recoveries performed (WAL replayed, delta fetched).
    pub restart_replays: u64,
    /// WAL records applied across all restart replays.
    pub wal_records_replayed: u64,
    /// Torn/corrupt log tails detected by checksum and truncated.
    pub torn_tails_truncated: u64,
    /// Objects received in delta-sync responses after a restart replay
    /// (the work a recovery cost — it must scale with the outage, not
    /// with the store).
    pub delta_objects_fetched: u64,
    /// WAL append/sync failures surfaced by the persistence backend
    /// (previously `FileLog` swallowed these silently).
    pub wal_io_errors: u64,
    /// Prepare votes refused because the WAL could not make the grant
    /// durable (degraded mode while the backend keeps erroring).
    pub wal_vote_refusals: u64,
    /// Successful WAL syncs that made at least one new record durable.
    pub wal_sync_batches: u64,
    /// Records made durable across those batches; divided by
    /// `wal_sync_batches` this is the group-commit batching factor.
    pub wal_records_synced: u64,
    /// Object versions this replica holds when the stats are taken,
    /// sorted by object id. The lost-ack checker compares these against
    /// the set of commits acknowledged to clients.
    pub inventory: Vec<(ObjectId, Version)>,
    /// Per-class store fingerprint, filled when the stats are taken — the
    /// cheap divergence check between replicas.
    pub digest: StoreDigest,
}

/// Cluster-awareness a server needs to run the catch-up protocol after a
/// crash-with-amnesia: which peers exist and what counts as a read quorum
/// among those that answered. Servers without one (standalone unit-test
/// servers) skip catch-up and restart empty.
#[derive(Clone)]
pub struct SyncConfig {
    /// The cluster's quorum structure (shared with clients).
    pub quorums: LevelQuorums,
    /// This server's own rank (excluded from its sync quorum: a replica's
    /// pre-crash quorum participation is void once its state is lost).
    pub rank: usize,
    /// Total number of servers (ranks `0..servers`).
    pub servers: usize,
}

/// Locks a transaction holds on this replica between prepare and phase 2.
struct PreparedTxn {
    objs: Vec<ObjectId>,
    /// When the prepare was granted — drives the expiry sweep.
    at: Instant,
}

/// One quorum node: a full replica of every object plus commit-lock and
/// contention bookkeeping. The server is single-threaded — it owns its
/// state and processes messages in arrival order, so each request is
/// handled atomically with respect to the others (the concurrency in the
/// system is *between* nodes, as in the paper's deployment).
pub struct Server {
    store: Store,
    contention: ContentionWindow,
    /// Objects locked at prepare per transaction, so abort/commit releases
    /// exactly what was acquired.
    prepared: HashMap<TxnId, PreparedTxn>,
    /// How long a prepared transaction may sit without a phase-2 message
    /// before its entry and locks are reclaimed.
    prepared_ttl: Duration,
    /// Replies already sent for 2PC requests, keyed by (txn, req): a
    /// retried or chaos-duplicated Prepare/Commit/Abort is answered from
    /// here instead of re-executing. This is what makes the client's
    /// same-request-id retry loop genuinely idempotent — without it, a
    /// delayed duplicate PrepareReq arriving *after* the commit would
    /// re-lock the write-set and strand the locks until the TTL sweep.
    completed: HashMap<(TxnId, ReqId), Msg>,
    /// Insertion order of `completed`, for FIFO eviction.
    completed_order: VecDeque<(TxnId, ReqId)>,
    stats: ServerStats,
    /// Window shape, kept to rebuild the contention window after a wipe.
    window: WindowConfig,
    /// Cluster-awareness for catch-up sync (`None` = standalone server).
    sync: Option<SyncConfig>,
    /// True from an amnesia wipe until peer inventories covering a read
    /// quorum have been absorbed. While set, reads and prepare votes are
    /// refused; phase-2 commits/aborts (decisions already made) and
    /// repair writes are still applied.
    syncing: bool,
    /// Recovery incarnation, bumped on every wipe. Stale [`Msg::SyncResp`]s
    /// from a previous recovery attempt are discarded by it.
    incarnation: u64,
    /// Peer ranks that answered the current incarnation's [`Msg::SyncReq`].
    sync_responders: HashSet<usize>,
    /// Correlation ids for server-originated requests (SyncReq).
    server_req: ReqId,
    /// Last amnesia epoch acted upon (vs. the endpoint's fault table).
    amnesia_seen: u64,
    /// Last crash-restart epoch acted upon (vs. the endpoint's fault
    /// table). A restart keeps the WAL: the replica replays it instead
    /// of wiping.
    restart_seen: u64,
    /// Durable decision log (`None` = no persistence: a restart degrades
    /// to amnesia-style full catch-up).
    wal: Option<Box<dyn Persistence>>,
    /// When 2PC acks may be released relative to the log — see
    /// [`DurabilityMode`]. Ignored without a WAL.
    durability: DurabilityMode,
    /// Records appended to the WAL since startup (monotonic watermark).
    wal_appended: u64,
    /// High-water mark of `wal_appended` covered by a successful sync.
    wal_durable: u64,
    /// True from an append/sync error until a sync succeeds. While set,
    /// new prepares are refused with `wal_refused` — the server degrades
    /// to back-pressure instead of handing out grants the log cannot
    /// make durable (or panicking).
    wal_failed: bool,
    /// When the oldest not-yet-durable record was appended — drives the
    /// group-commit `max_delay` deadline.
    wal_first_dirty_at: Option<Instant>,
    /// Decision records (commit apply / abort) whose original append
    /// failed. The quorum's decision is applied to the store regardless
    /// (refusing it would strand the locks), but its ack is parked past
    /// these: every sync attempt first re-appends the queue in order, so
    /// the ack releases only once a re-append plus a covering sync made
    /// the record durable — ack-after-durable holds across append faults.
    wal_retry: VecDeque<WalRecord>,
    /// Earliest time the next sync attempt may run while the backend is
    /// unhealthy; `None` = no backoff pending (healthy, or first failure
    /// not yet retried).
    wal_retry_after: Option<Instant>,
    /// Current degraded-mode backoff step (doubles per failed attempt,
    /// bounded by [`WAL_RETRY_BACKOFF_MAX`]).
    wal_backoff: Duration,
    /// True while the current catch-up round should fetch only the delta
    /// (set by a restart replay, cleared by amnesia and by completion):
    /// probes carry the replica's known versions so peers answer with
    /// just the newer/missing objects.
    delta_sync: bool,
    /// When the message-path lazy sweep last ran (see [`Server::handle`]).
    last_sweep: Instant,
    /// Sink for server-side spans (inbox dwell, handling, sync refusals),
    /// parented by the trace context a [`Msg::Traced`] request carries.
    /// `None` (the default) disables span recording entirely; spans never
    /// touch [`ServerStats`].
    spans: Option<Arc<SpanCollector>>,
}

/// Lock-release sentinel for writes installed outside 2PC (sync catch-up
/// and client read-repair): a transaction id no client can mint — client
/// node ids start at the server count — so [`Store::apply`] never releases
/// a real transaction's lock on its behalf.
const REPAIR_TXN: TxnId = TxnId {
    client: NodeId(u32::MAX),
    seq: u64::MAX,
};

/// Bound on the dedup cache. Eviction is FIFO: a reply only needs to
/// survive as long as its client might still retransmit the request, so
/// the oldest entry is always the safest to shed.
const DEDUP_CAPACITY: usize = 8192;

/// Default prepare TTL. Must comfortably exceed the client's worst-case
/// phase-2 latency (`rpc_timeout × (quorum_retries + 1)`, 4 s with default
/// [`crate::ClientConfig`]): reclaiming a *live* client's locks would let
/// another transaction commit in between, and version monotonicity would
/// then silently discard the first client's phase-2 writes on this replica.
/// Shared with [`crate::ClusterConfig`] so the two defaults cannot drift.
pub const DEFAULT_PREPARED_TTL: Duration = Duration::from_secs(30);

/// Backoff bounds for retrying WAL syncs (and failed-append re-stages)
/// while the backend keeps erroring. Without a backoff the service loop's
/// "degraded mode is due now" rule turns a persistently failing device
/// into a 100% CPU spin; the cap matches the loop's idle receive timeout,
/// so a healed backend is still noticed within one idle period.
const WAL_RETRY_BACKOFF_MIN: Duration = Duration::from_millis(1);
const WAL_RETRY_BACKOFF_MAX: Duration = Duration::from_millis(20);

impl Server {
    /// A fresh replica with an empty store.
    pub fn new(window: WindowConfig) -> Self {
        Server {
            store: Store::new(),
            contention: ContentionWindow::new(window),
            prepared: HashMap::new(),
            prepared_ttl: DEFAULT_PREPARED_TTL,
            completed: HashMap::new(),
            completed_order: VecDeque::new(),
            stats: ServerStats::default(),
            window,
            sync: None,
            syncing: false,
            incarnation: 0,
            sync_responders: HashSet::new(),
            server_req: 0,
            amnesia_seen: 0,
            restart_seen: 0,
            wal: None,
            durability: DurabilityMode::default(),
            wal_appended: 0,
            wal_durable: 0,
            wal_failed: false,
            wal_first_dirty_at: None,
            wal_retry: VecDeque::new(),
            wal_retry_after: None,
            wal_backoff: Duration::ZERO,
            delta_sync: false,
            last_sweep: Instant::now(),
            spans: None,
        }
    }

    /// Install the durable decision log. Appends happen at the 2PC
    /// decision points (prepare grant, commit apply, abort, incarnation
    /// bump); [`Server::recover_from_restart`] replays it.
    pub fn set_persistence(&mut self, wal: Box<dyn Persistence>) {
        self.wal = Some(wal);
    }

    /// Choose when 2PC acks are released relative to the log. With
    /// `EveryRecord` (the default) and `GroupCommit`, the service loop
    /// holds `PrepareResp`/`CommitAck`/`AbortAck` replies until a sync
    /// covers the records they depend on; `Buffered` acks immediately
    /// and never syncs (the pre-durability behaviour, kept for ablation).
    pub fn set_durability(&mut self, mode: DurabilityMode) {
        self.durability = mode;
    }

    /// Append one record, tracking the dirty window. Returns `false` on
    /// backend error, in which case the record was *not* staged and the
    /// server enters degraded mode (`wal_failed`) until a sync succeeds.
    /// `true` when there is no WAL at all: callers treat "no log" as
    /// "nothing to make durable".
    fn append_wal(&mut self, rec: &WalRecord) -> bool {
        let Some(wal) = self.wal.as_mut() else {
            return true;
        };
        match wal.append(rec) {
            Ok(()) => {
                self.wal_appended += 1;
                if self.wal_first_dirty_at.is_none() {
                    self.wal_first_dirty_at = Some(Instant::now());
                }
                true
            }
            Err(_) => {
                self.stats.wal_io_errors += 1;
                self.wal_failed = true;
                false
            }
        }
    }

    /// Try to make every appended record durable. Returns `true` when the
    /// log is fully durable afterwards (trivially so without a WAL) —
    /// which also clears degraded mode: the backend is healthy again and
    /// new prepares may be granted. Anything less (sync error, or a
    /// failed-append retry still pending) keeps degraded mode and backs
    /// off the next attempt so a dead backend is not hammered in a spin.
    fn sync_wal(&mut self) -> bool {
        // Re-stage decision records whose original append failed, in
        // order, ahead of the sync: the acks parked on them release only
        // once these reach the log under a covering sync.
        while let Some(rec) = self.wal_retry.front().cloned() {
            if self.append_wal(&rec) {
                self.wal_retry.pop_front();
            } else {
                break;
            }
        }
        let dirty = self.wal_appended - self.wal_durable;
        if dirty == 0 && !self.wal_failed && self.wal_retry.is_empty() {
            return true;
        }
        let Some(wal) = self.wal.as_mut() else {
            return true;
        };
        let synced = match wal.sync() {
            Ok(()) => {
                if dirty > 0 {
                    self.stats.wal_sync_batches += 1;
                    self.stats.wal_records_synced += dirty;
                }
                self.wal_durable = self.wal_appended;
                self.wal_first_dirty_at = None;
                true
            }
            Err(_) => {
                self.stats.wal_io_errors += 1;
                false
            }
        };
        let healthy = synced && self.wal_retry.is_empty();
        self.wal_failed = !healthy;
        if healthy {
            self.wal_retry_after = None;
            self.wal_backoff = Duration::ZERO;
        } else {
            self.wal_backoff =
                (self.wal_backoff * 2).clamp(WAL_RETRY_BACKOFF_MIN, WAL_RETRY_BACKOFF_MAX);
            self.wal_retry_after = Some(Instant::now() + self.wal_backoff);
        }
        healthy
    }

    /// When must the next sync happen? `None` means no sync is scheduled
    /// (clean log, no WAL, or Buffered mode — which only syncs at
    /// shutdown). Degraded mode (sync failure or a pending failed-append
    /// retry) is due after its backoff — immediate enough to exit
    /// back-pressure as the backend heals, without busy-spinning on one
    /// that stays broken. Under GroupCommit, `waiting` says
    /// acks are parked on the durable watermark: that makes a sync due at
    /// once — the loop drained the inbox first, so the batch is whatever
    /// accumulated while the previous fsync ran, and ack latency stays
    /// one fsync rather than one aging period. (Holding waiters for a
    /// sub-millisecond accumulation window was tried and measured worse:
    /// the extra prepare-ack delay stretches lock hold time, and on a
    /// contended workload the conflict aborts that causes cost more than
    /// the larger batches save.) The record/age caps bound the dirty
    /// window when *no* ack is waiting (refused votes, best-effort
    /// decision appends). The service loop shortens its receive timeout
    /// to this deadline so aging fires on time.
    fn wal_sync_deadline(&self, now: Instant, waiting: bool) -> Option<Instant> {
        self.wal.as_ref()?;
        if self.wal_failed || !self.wal_retry.is_empty() {
            return Some(self.wal_retry_after.unwrap_or(now));
        }
        let dirty = self.wal_appended - self.wal_durable;
        if dirty == 0 {
            return None;
        }
        match self.durability {
            DurabilityMode::EveryRecord => Some(now),
            DurabilityMode::GroupCommit {
                max_records,
                max_delay,
            } => {
                if waiting || dirty as usize >= max_records {
                    return Some(now);
                }
                Some(self.wal_first_dirty_at.unwrap_or(now) + max_delay)
            }
            DurabilityMode::Buffered => None,
        }
    }

    /// Has [`Self::wal_sync_deadline`] passed?
    fn wal_sync_due(&self, now: Instant, waiting: bool) -> bool {
        self.wal_sync_deadline(now, waiting)
            .is_some_and(|due| due <= now)
    }

    /// Install the span sink the service loop records server-side spans
    /// into. Spans are only recorded for requests that arrive wrapped in
    /// [`Msg::Traced`]; bare requests stay span-free either way.
    pub fn set_span_collector(&mut self, spans: Arc<SpanCollector>) {
        self.spans = Some(spans);
    }

    /// Override the prepare TTL (see `DEFAULT_PREPARED_TTL` for the safety
    /// bound it must respect relative to client timeouts).
    pub fn set_prepared_ttl(&mut self, ttl: Duration) {
        self.prepared_ttl = ttl;
    }

    /// Install the cluster-awareness that enables catch-up sync after a
    /// crash-with-amnesia. Without it a wiped server restarts empty and
    /// keeps serving — acceptable only for standalone unit-test servers.
    pub fn set_sync_config(&mut self, sync: SyncConfig) {
        self.sync = Some(sync);
    }

    /// Is this replica still catching up after an amnesia wipe?
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// Reclaim prepared entries older than the TTL, releasing their locks.
    /// Returns how many transactions were expired. Invoked periodically by
    /// [`Server::run`]; public so tests (and embedders with their own
    /// service loops) can drive it directly.
    pub fn sweep_expired(&mut self, now: Instant) -> usize {
        let ttl = self.prepared_ttl;
        let expired: Vec<TxnId> = self
            .prepared
            .iter()
            .filter(|(_, p)| now.duration_since(p.at) >= ttl)
            .map(|(&t, _)| t)
            .collect();
        for txn in &expired {
            if let Some(p) = self.prepared.remove(txn) {
                for obj in p.objs {
                    self.store.unlock(obj, *txn);
                }
            }
        }
        self.stats.expired_prepares += expired.len() as u64;
        expired.len()
    }

    /// Counters so far, with the store digest and the object-version
    /// inventory computed at call time.
    pub fn stats(&self) -> ServerStats {
        let mut s = self.stats.clone();
        s.digest = self.store.digest();
        s.inventory = self.store.known_versions();
        s.inventory.sort_unstable();
        s
    }

    /// Direct store access for tests and cluster seeding.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Crash-with-amnesia landed: lose the store, the prepared table, the
    /// dedup cache and the contention window, then (when peers are known)
    /// enter catch-up mode — reads and prepare votes are refused until
    /// peer inventories covering a read quorum have been absorbed.
    pub fn wipe_for_amnesia(&mut self) {
        self.store.wipe();
        self.prepared.clear();
        self.completed.clear();
        self.completed_order.clear();
        self.contention = ContentionWindow::new(self.window);
        self.incarnation += 1;
        self.sync_responders.clear();
        self.stats.amnesia_wipes += 1;
        // Amnesia loses the disk too: the log restarts empty, seeded
        // with the new incarnation, and catch-up is a full sync.
        if let Some(wal) = self.wal.as_mut() {
            wal.reset();
        }
        // The reset emptied whatever was dirty; start a fresh window.
        // Failed-append retries lived only in this process's memory and
        // reference the wiped log — they die with it, exactly like the
        // acks the service loop had parked on them.
        self.wal_durable = self.wal_appended;
        self.wal_first_dirty_at = None;
        self.wal_failed = false;
        self.wal_retry.clear();
        self.wal_retry_after = None;
        self.wal_backoff = Duration::ZERO;
        let incarnation = self.incarnation;
        self.append_wal(&WalRecord::IncarnationBump { incarnation });
        self.delta_sync = false;
        // Without peers there is nobody to catch up from; restarting
        // empty is all a standalone server can do.
        self.syncing = self.sync.is_some();
    }

    /// Crash-restart landed: the process died but the log survived.
    /// Volatile state (store, prepared table, dedup cache, contention
    /// window) is dropped and rebuilt by deterministically replaying the
    /// WAL — torn tail truncated, `(txn, req)`-idempotent apply, replies
    /// reconstructed so post-restart client retries hit the dedup cache.
    /// Catch-up then runs in *delta* mode: only writes committed while
    /// this replica was down need fetching from peers.
    pub fn recover_from_restart(&mut self) {
        self.stats.restart_replays += 1;
        self.store = Store::new();
        self.prepared.clear();
        self.completed.clear();
        self.completed_order.clear();
        self.contention = ContentionWindow::new(self.window);
        self.sync_responders.clear();
        let now = Instant::now();
        let mut replayed_incarnation = 0;
        if let Some(wal) = self.wal.as_mut() {
            let loaded = wal.load();
            self.stats.torn_tails_truncated += loaded.torn_tails_truncated;
            let st = replay(loaded.records);
            self.stats.wal_records_replayed += st.records;
            replayed_incarnation = st.incarnation;
            self.store = st.store;
            for (txn, objs) in st.prepared {
                // The prepare's age did not survive the crash; re-arming
                // the TTL from now is the conservative choice (locks are
                // held at most one extra TTL, never released early).
                self.prepared.insert(txn, PreparedTxn { objs, at: now });
            }
            for (key, reply) in st.replies {
                if self.completed.len() >= DEDUP_CAPACITY {
                    if let Some(old) = self.completed_order.pop_front() {
                        self.completed.remove(&old);
                    }
                }
                if self.completed.insert(key, reply).is_none() {
                    self.completed_order.push_back(key);
                }
            }
        }
        self.incarnation = self.incarnation.max(replayed_incarnation) + 1;
        // The load dropped whatever the backend lost (e.g. a fault-injected
        // unsynced suffix); the surviving prefix is durable by definition.
        // Failed-append retries were in-memory only — the crash loses
        // them, exactly like the acks the service loop had parked on them.
        self.wal_durable = self.wal_appended;
        self.wal_first_dirty_at = None;
        self.wal_failed = false;
        self.wal_retry.clear();
        self.wal_retry_after = None;
        self.wal_backoff = Duration::ZERO;
        let incarnation = self.incarnation;
        self.append_wal(&WalRecord::IncarnationBump { incarnation });
        self.delta_sync = true;
        self.syncing = self.sync.is_some();
    }

    /// The [`Msg::SyncReq`] to (re)broadcast to every peer while catching
    /// up, with the peer list. `None` when not syncing or peerless.
    /// Re-broadcasting with a fresh correlation id is harmless: responses
    /// are matched by incarnation, not request id.
    pub fn sync_probe(&mut self) -> Option<(Vec<NodeId>, Msg)> {
        if !self.syncing {
            return None;
        }
        let sync = self.sync.as_ref()?;
        self.server_req += 1;
        let peers = (0..sync.servers)
            .filter(|&r| r != sync.rank)
            .map(|r| NodeId(r as u32))
            .collect();
        let probe = if self.delta_sync {
            Msg::SyncDeltaReq {
                req: self.server_req,
                incarnation: self.incarnation,
                known: self.store.known_versions(),
            }
        } else {
            Msg::SyncReq {
                req: self.server_req,
                incarnation: self.incarnation,
            }
        };
        Some((peers, probe))
    }

    /// Absorb one peer's [`Msg::SyncResp`] inventory. Catch-up completes —
    /// and the replica resumes voting and serving reads — once the set of
    /// responders covers a full read quorum *excluding this server*: any
    /// read quorum intersects every write quorum in at least one member,
    /// and since none of the responders is this (wiped) server, the
    /// max-version union over them dominates every write committed before
    /// the snapshots. Writes concurrent with catch-up either include this
    /// replica in their write quorum (refused → the client aborts and
    /// retries) or avoid it entirely, in which case missing them here is
    /// ordinary replica staleness that quorum reads already mask.
    fn absorb_sync_resp(
        &mut self,
        src: NodeId,
        incarnation: u64,
        entries: Vec<(ObjectId, crate::messages::Version, acn_txir::ObjectVal)>,
    ) {
        if !self.syncing || incarnation != self.incarnation {
            return; // stale response to an earlier recovery attempt
        }
        if self.delta_sync {
            // Every entry a peer shipped is recovery work the restart
            // cost; the regression tests pin this to the outage size.
            self.stats.delta_objects_fetched += entries.len() as u64;
        }
        for (obj, version, value) in entries {
            if self.store.apply(obj, version, value, REPAIR_TXN) {
                self.stats.sync_objects_received += 1;
            }
        }
        let Some(sync) = &self.sync else { return };
        self.sync_responders.insert(src.index());
        let rank = sync.rank;
        let responders = &self.sync_responders;
        let covered = sync
            .quorums
            .read_quorum(0, &|r| r != rank && responders.contains(&r))
            .is_some();
        if covered {
            self.syncing = false;
            self.delta_sync = false;
            self.stats.syncs_completed += 1;
        }
    }

    /// [`Server::handle`] with the sender known: intercepts peer-to-peer
    /// sync responses (which update recovery state instead of producing a
    /// reply) and delegates everything else. The service loop always goes
    /// through here.
    pub fn handle_from(&mut self, src: NodeId, msg: Msg, now: Instant) -> Option<Msg> {
        if let Msg::SyncResp {
            incarnation,
            entries,
            ..
        } = msg
        {
            self.absorb_sync_resp(src, incarnation, entries);
            return None;
        }
        self.handle(msg, now)
    }

    /// Handle one request, producing the reply to send back (if any).
    ///
    /// 2PC requests (Prepare/Commit/Abort) are deduped by (txn, req): a
    /// duplicate — from a client retry whose response was lost, or from
    /// chaos duplication in flight — replays the original reply without
    /// touching locks, versions, or counters. Reads are not deduped; they
    /// are naturally idempotent and re-reading gives the client fresher
    /// data. Sync refusals are not cached either: the same request id may
    /// legitimately be retried after catch-up completes and must then get
    /// a real vote.
    ///
    /// Message arrival also drives a lazy TTL sweep: a server whose
    /// service loop sat blocked in a long receive would otherwise only
    /// reclaim expired prepares on the loop's timeout cadence, so an
    /// expired lock could outlive its TTL by a full idle gap and reject
    /// the very prepare that just arrived.
    pub fn handle(&mut self, msg: Msg, now: Instant) -> Option<Msg> {
        // Unwrap a trace envelope defensively so direct calls (tests,
        // embedders) behave exactly like the service loop, which strips
        // the envelope itself to time the handling.
        let msg = match msg {
            Msg::Traced { inner, .. } => *inner,
            other => other,
        };
        let sweep_every = (self.prepared_ttl / 4).max(Duration::from_millis(100));
        if now.saturating_duration_since(self.last_sweep) >= sweep_every {
            self.sweep_expired(now);
            self.last_sweep = now;
        }
        let dedup_key = match &msg {
            Msg::PrepareReq { txn, req, .. }
            | Msg::CommitReq { txn, req, .. }
            | Msg::AbortReq { txn, req } => Some((*txn, *req)),
            _ => None,
        };
        if let Some(key) = dedup_key {
            if let Some(reply) = self.completed.get(&key) {
                self.stats.dedup_hits += 1;
                return Some(reply.clone());
            }
        }
        let reply = self.handle_fresh(msg, now);
        // Refusals are not cached: the same request id may legitimately
        // be retried after catch-up completes (syncing) or the storage
        // backend heals (wal_refused) and must then get a real vote.
        let cacheable = !matches!(
            &reply,
            Some(Msg::PrepareResp { syncing: true, .. })
                | Some(Msg::PrepareResp {
                    wal_refused: true,
                    ..
                })
        );
        if let (Some(key), Some(r), true) = (dedup_key, &reply, cacheable) {
            if self.completed.len() >= DEDUP_CAPACITY {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
            if self.completed.insert(key, r.clone()).is_none() {
                self.completed_order.push_back(key);
            }
        }
        reply
    }

    /// [`Server::handle`] past the dedup cache: executes the request.
    fn handle_fresh(&mut self, msg: Msg, now: Instant) -> Option<Msg> {
        // Catch-up mode: an amnesiac store reads every object as version 0,
        // so serving reads would hand out phantom-fresh copies and voting
        // yes in prepares would silently pass validation against wiped
        // state. Refuse both. Phase-2 messages are still processed below —
        // the commit/abort decision was already made from quorum votes that
        // did not include this replica's, and `Store::apply` only moves
        // versions forward.
        if self.syncing {
            match &msg {
                Msg::ReadReq { req, .. } | Msg::ReadBatchReq { req, .. } => {
                    self.stats.sync_read_refusals += 1;
                    return Some(Msg::Syncing { req: *req });
                }
                Msg::PrepareReq { req, .. } => {
                    self.stats.sync_vote_refusals += 1;
                    return Some(Msg::PrepareResp {
                        req: *req,
                        vote: false,
                        invalid: vec![],
                        locked: None,
                        syncing: true,
                        wal_refused: false,
                    });
                }
                _ => {}
            }
        }
        // Degraded mode: the WAL cannot currently make anything durable,
        // so granting a prepare would hand out a lock whose grant record
        // is unloggable. Refuse new prepares with back-pressure the
        // client attributes separately; phase-2 commits/aborts (decisions
        // already made by the quorum) are still applied below.
        if self.wal_failed {
            if let Msg::PrepareReq { req, .. } = &msg {
                self.stats.wal_vote_refusals += 1;
                return Some(Msg::PrepareResp {
                    req: *req,
                    vote: false,
                    invalid: vec![],
                    locked: None,
                    syncing: false,
                    wal_refused: true,
                });
            }
        }
        match msg {
            Msg::ReadReq {
                txn,
                req,
                obj,
                validate,
                sample,
            } => {
                self.stats.reads += 1;
                let (version, value, lock) = self.store.read(obj);
                // Incremental validation runs regardless of lock state: a
                // stale read-set is worth reporting even when the requested
                // object is protected.
                let invalid: Vec<ObjectId> = validate
                    .iter()
                    .filter(|&&(o, v)| self.store.version(o) > v)
                    .map(|&(o, _)| o)
                    .collect();
                let locked = matches!(lock, Some(holder) if holder != txn);
                let levels = sample
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                Some(Msg::ReadResp {
                    req,
                    version,
                    value,
                    invalid,
                    locked,
                    levels,
                })
            }
            Msg::ReadBatchReq {
                txn,
                req,
                objs,
                validate,
                sample,
            } => {
                // The server is single-threaded, so the whole batch is
                // served against one atomic snapshot of the store. Each
                // object bumps the read counter once, exactly as its own
                // ReadReq would have.
                self.stats.reads += objs.len() as u64;
                self.stats.batched_reads += 1;
                let invalid: Vec<ObjectId> = validate
                    .iter()
                    .filter(|&&(o, v)| self.store.version(o) > v)
                    .map(|&(o, _)| o)
                    .collect();
                let reads = objs
                    .iter()
                    .map(|&obj| {
                        let (version, value, lock) = self.store.read(obj);
                        crate::messages::BatchRead {
                            obj,
                            version,
                            value,
                            locked: matches!(lock, Some(holder) if holder != txn),
                        }
                    })
                    .collect();
                let levels = sample
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                Some(Msg::ReadBatchResp {
                    req,
                    reads,
                    invalid,
                    levels,
                })
            }
            Msg::PrepareReq {
                txn,
                req,
                validate,
                writes,
            } => {
                self.stats.prepares += 1;
                // Lock the write-set all-or-nothing on this replica.
                let mut locked: Vec<ObjectId> = Vec::with_capacity(writes.len());
                let mut lock_conflict: Option<ObjectId> = None;
                let mut vote = true;
                for &(obj, _) in &writes {
                    if self.store.try_lock(obj, txn) {
                        locked.push(obj);
                    } else {
                        // Blame the contended object for the rejection,
                        // locally and in the response.
                        self.contention.record_abort(obj, now);
                        lock_conflict = Some(obj);
                        vote = false;
                        break;
                    }
                }
                let mut invalid = Vec::new();
                if vote {
                    invalid = validate
                        .iter()
                        .filter(|&&(o, v)| self.store.version(o) > v)
                        .map(|&(o, _)| o)
                        .collect();
                    vote = invalid.is_empty();
                    for &o in &invalid {
                        self.contention.record_abort(o, now);
                    }
                }
                if vote {
                    // Read-only prepares (no writes) hold no locks and need
                    // no phase 2, so nothing is recorded for them.
                    if !locked.is_empty() {
                        if !self.append_wal(&WalRecord::PrepareGrant {
                            txn,
                            req,
                            objs: locked.clone(),
                        }) {
                            // The grant could not even be staged: undo the
                            // locks and refuse with storage back-pressure.
                            for obj in locked {
                                self.store.unlock(obj, txn);
                            }
                            self.stats.wal_vote_refusals += 1;
                            return Some(Msg::PrepareResp {
                                req,
                                vote: false,
                                invalid: vec![],
                                locked: None,
                                syncing: false,
                                wal_refused: true,
                            });
                        }
                        self.prepared.insert(
                            txn,
                            PreparedTxn {
                                objs: locked,
                                at: now,
                            },
                        );
                    }
                } else {
                    for obj in locked {
                        self.store.unlock(obj, txn);
                    }
                    self.stats.prepare_rejects += 1;
                }
                Some(Msg::PrepareResp {
                    req,
                    vote,
                    invalid,
                    locked: lock_conflict,
                    syncing: false,
                    wal_refused: false,
                })
            }
            Msg::CommitReq { txn, req, writes } => {
                self.stats.commits += 1;
                // Write-ahead: the decision is durable before the store
                // mutates, so a crash between the two replays the apply.
                // On append failure the decision — already made by the
                // quorum — is applied anyway (refusing it would strand
                // the locks), but the record goes onto the retry queue:
                // the ack stays parked until a re-append plus a covering
                // sync make it durable, so ack-after-durable holds even
                // when the append itself faulted. The error is counted
                // and the server degrades to refusing *new* prepares.
                let rec = WalRecord::CommitApply {
                    txn,
                    req,
                    writes: writes.clone(),
                };
                if !self.append_wal(&rec) {
                    self.wal_retry.push_back(rec);
                }
                for (obj, version, value) in writes {
                    self.store.apply(obj, version, value, txn);
                    self.contention.record_write(obj, now);
                }
                self.prepared.remove(&txn);
                Some(Msg::CommitAck { req })
            }
            Msg::AbortReq { txn, req } => {
                self.stats.aborts += 1;
                // Same retry discipline as the commit record: the abort
                // is applied now, its ack parked until the record is
                // durable. A record lost to a crash before the retry
                // lands replays as a still-prepared transaction, which
                // the post-restart TTL sweep reclaims — and the parked
                // ack dies with the crash, never sent.
                let rec = WalRecord::Abort { txn, req };
                if !self.append_wal(&rec) {
                    self.wal_retry.push_back(rec);
                }
                if let Some(p) = self.prepared.remove(&txn) {
                    for obj in p.objs {
                        self.store.unlock(obj, txn);
                    }
                }
                Some(Msg::AbortAck { req })
            }
            Msg::ContentionReq { req, classes } => {
                self.stats.contention_queries += 1;
                let levels = classes
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                let abort_levels = classes
                    .iter()
                    .map(|&c| (c, self.contention.class_abort_level(c, now)))
                    .collect();
                Some(Msg::ContentionResp {
                    req,
                    levels,
                    abort_levels,
                })
            }
            Msg::SyncReq { req, incarnation } => {
                // A replica that is itself catching up must not seed
                // another: its amnesiac inventory would launder version-0
                // state into the requester's "covered" quorum. Stay silent
                // and let the requester's re-broadcast find healthy peers.
                if self.syncing {
                    return None;
                }
                self.stats.syncs_served += 1;
                Some(Msg::SyncResp {
                    req,
                    incarnation,
                    entries: self.store.inventory(),
                })
            }
            Msg::SyncDeltaReq {
                req,
                incarnation,
                known,
            } => {
                // Same no-amnesiac-seeding rule as a full SyncReq.
                if self.syncing {
                    return None;
                }
                self.stats.syncs_served += 1;
                // Ship only what the requester is missing: objects it has
                // never seen, or holds at an older version. A never-written
                // object reads as version 0 everywhere, so absent == 0.
                let known: HashMap<ObjectId, crate::messages::Version> =
                    known.into_iter().collect();
                let entries = self
                    .store
                    .inventory()
                    .into_iter()
                    .filter(|(obj, version, _)| known.get(obj).copied().unwrap_or(0) < *version)
                    .collect();
                Some(Msg::SyncResp {
                    req,
                    incarnation,
                    entries,
                })
            }
            Msg::RepairWrite { writes, .. } => {
                self.stats.repair_writes_received += 1;
                for (obj, version, value) in writes {
                    // Forward-only apply under a sentinel txn: a repair can
                    // never regress a concurrent commit or release a real
                    // transaction's lock. Safe even on protected objects —
                    // the repaired version is an already-committed one,
                    // which validation guarantees is ≤ any version the
                    // lock-holding prepare will install.
                    if self.store.apply(obj, version, value, REPAIR_TXN) {
                        self.stats.repair_writes_applied += 1;
                    }
                }
                None // fire-and-forget: no ack
            }
            Msg::Shutdown => None,
            // Responses should never arrive at a server.
            other => {
                debug_assert!(false, "server received non-request {other:?}");
                None
            }
        }
    }

    /// Service loop: receive, handle, reply, until `Msg::Shutdown` arrives
    /// or the network closes. Returns the final stats.
    ///
    /// Periodically sweeps expired prepared transactions, so a client that
    /// crashed (or timed out) between prepare and phase 2 cannot leave its
    /// write-set locked — and the `prepared` map growing — forever.
    ///
    /// Each iteration also polls the fault table's amnesia epoch: when a
    /// crash-with-amnesia lands, the replica wipes itself immediately (so
    /// no pre-wipe state survives into recovery) and, once reachable
    /// again, re-broadcasts [`Msg::SyncReq`] to its peers every probe
    /// interval until their inventories cover a read quorum.
    pub fn run(mut self, endpoint: Endpoint<Msg>) -> ServerStats {
        let sweep_every = (self.prepared_ttl / 4).max(Duration::from_millis(100));
        let probe_every = Duration::from_millis(40);
        let mut next_sweep = Instant::now() + sweep_every;
        let mut next_probe = Instant::now();
        // Acks held back until the WAL records they depend on are durable:
        // (covering append watermark, destination, reply, and — when the
        // request carried a trace — its context plus park time, so the
        // release records a `WalPark` span covering the held interval).
        // Watermarks are appended in increasing order, so the front is
        // always the next releasable entry.
        type Parked = (u64, NodeId, Msg, Option<(TraceCtx, Instant)>);
        let mut wal_waiters: VecDeque<Parked> = VecDeque::new();
        // Group commit batches by *arrival concurrency*: the loop drains
        // every message already queued in the inbox before syncing, so one
        // fsync covers everything that accumulated while the previous one
        // ran. EveryRecord keeps a drain of 1 — its contract is one sync
        // per record, and the ablation measures exactly that.
        let drain: usize = match self.durability {
            DurabilityMode::GroupCommit { .. } => 64,
            _ => 1,
        };
        'serve: loop {
            // Amnesia first: if both faults landed in one poll gap, the
            // disk is gone too — the replay then finds the wiped log,
            // which is exactly what the combined fault means.
            let epoch = endpoint.amnesia_epoch();
            if epoch > self.amnesia_seen {
                self.amnesia_seen = epoch;
                self.wipe_for_amnesia();
                // A crashed process loses its in-memory parked acks: they
                // were never sent, and the records covering them may have
                // died with the wiped log or the unsynced suffix —
                // releasing them post-recovery would ack decisions the
                // log no longer holds, the exact early ack the
                // ack-after-durable contract forbids.
                wal_waiters.clear();
            }
            let repoch = endpoint.restart_epoch();
            if repoch > self.restart_seen {
                self.restart_seen = repoch;
                self.recover_from_restart();
                // Same as amnesia: pre-crash parked acks die unsent.
                wal_waiters.clear();
            }
            if self.syncing && !endpoint.is_failed() {
                let now = Instant::now();
                if now >= next_probe {
                    if let Some((peers, probe)) = self.sync_probe() {
                        let bytes = probe.wire_bytes();
                        endpoint.broadcast(&peers, probe, bytes);
                    }
                    next_probe = now + probe_every;
                }
            }
            // A short receive keeps the amnesia poll and probe cadence
            // responsive while the node is failed or idle, shortened to
            // the sync deadline when records are dirty so aging (and the
            // waiter accumulation window) fires on time; after the first
            // message, zero-timeout receives drain what is already queued.
            'drain: for received in 0..drain {
                let timeout = if received == 0 {
                    let idle = Duration::from_millis(20);
                    match self.wal_sync_deadline(Instant::now(), !wal_waiters.is_empty()) {
                        Some(due) => idle.min(due.saturating_duration_since(Instant::now())),
                        None => idle,
                    }
                } else {
                    Duration::ZERO
                };
                match endpoint.recv_timeout_meta(timeout) {
                    Ok((src, msg, meta)) => {
                        // Strip the trace envelope before dispatch so
                        // handling (and the Shutdown check) sees the bare
                        // request; the carried context parents the
                        // server-side spans below.
                        let (ctx, msg) = match msg {
                            Msg::Traced { ctx, inner } => (Some(ctx), *inner),
                            other => (None, other),
                        };
                        if matches!(msg, Msg::Shutdown) {
                            break 'serve;
                        }
                        let reply = self.handle_from(src, msg, Instant::now());
                        if let (Some(spans), Some(ctx)) = (self.spans.as_ref(), ctx) {
                            let node = endpoint.id().0;
                            let done = Instant::now();
                            // Inbox dwell: matured on the wire at
                            // `deliver_at`, picked up by this
                            // single-threaded loop at `received_at` — the
                            // server-queue segment.
                            spans.record(RawSpan {
                                parent: ctx.span,
                                trace: ctx.trace,
                                kind: SpanKind::ServerQueue,
                                node,
                                start: meta.deliver_at,
                                end: meta.received_at,
                                flags: 0,
                            });
                            spans.record(RawSpan {
                                parent: ctx.span,
                                trace: ctx.trace,
                                kind: SpanKind::ServerHandle,
                                node,
                                start: meta.received_at,
                                end: done,
                                flags: 0,
                            });
                            // A refusal while catching up reads as a
                            // rolled-back server span: the client will
                            // retry elsewhere.
                            let refused = matches!(
                                &reply,
                                Some(Msg::Syncing { .. })
                                    | Some(Msg::PrepareResp { syncing: true, .. })
                            );
                            if refused {
                                spans.record(RawSpan {
                                    parent: ctx.span,
                                    trace: ctx.trace,
                                    kind: SpanKind::SyncRefusal,
                                    node,
                                    start: meta.received_at,
                                    end: done,
                                    flags: FLAG_ROLLED_BACK,
                                });
                            }
                        }
                        if let Some(reply) = reply {
                            // Ack-after-durable: a 2PC reply that depends
                            // on log records still in the dirty window is
                            // parked until a sync covers the current
                            // watermark. Reads and refusals (no vote ⇒ no
                            // grant record) go out immediately; Buffered
                            // mode never defers — that is exactly the
                            // honesty gap the ablation measures.
                            let needs_durability = matches!(
                                &reply,
                                Msg::PrepareResp { vote: true, .. }
                                    | Msg::CommitAck { .. }
                                    | Msg::AbortAck { .. }
                            );
                            // A pending failed-append retry counts into
                            // the covering watermark: its record is not
                            // even staged yet, and will occupy the slots
                            // past everything queued before it once the
                            // sync path re-appends the queue in order.
                            let mark = self.wal_appended + self.wal_retry.len() as u64;
                            let defer = needs_durability
                                && self.wal.is_some()
                                && self.durability != DurabilityMode::Buffered
                                && self.wal_durable < mark;
                            if defer {
                                let parked = ctx.map(|c| (c, Instant::now()));
                                wal_waiters.push_back((mark, src, reply, parked));
                            } else {
                                let bytes = reply.wire_bytes();
                                endpoint.send_sized(src, reply, bytes);
                            }
                        }
                    }
                    Err(RecvError::Timeout) => break 'drain,
                    Err(RecvError::Closed) => break 'serve,
                }
            }
            // Sync on the durability mode's cadence (EveryRecord: right
            // here, before the ack leaves; GroupCommit: once the oldest
            // parked ack has aged past the accumulation window — the
            // drain above already emptied the inbox, so the batch is
            // everything that arrived during the window plus the previous
            // fsync — or when the dirty window fills or ages out with no
            // waiter), then release every waiter the new durable watermark
            // covers.
            let now = Instant::now();
            if self.wal_sync_due(now, !wal_waiters.is_empty()) {
                let sync_start = Instant::now();
                self.sync_wal();
                // The fsync itself is server-local work with no client
                // parent — a root-level span so flight-recorder dumps show
                // when the disk was busy.
                if let Some(spans) = self.spans.as_ref() {
                    spans.record(RawSpan {
                        parent: 0,
                        trace: 0,
                        kind: SpanKind::WalSync,
                        node: endpoint.id().0,
                        start: sync_start,
                        end: Instant::now(),
                        flags: 0,
                    });
                }
            }
            while let Some(&(mark, _, _, _)) = wal_waiters.front() {
                if mark > self.wal_durable {
                    break;
                }
                let (_, dst, msg, parked) = wal_waiters.pop_front().expect("front checked");
                if let (Some(spans), Some((c, at))) = (self.spans.as_ref(), parked) {
                    spans.record(RawSpan {
                        parent: c.span,
                        trace: c.trace,
                        kind: SpanKind::WalPark,
                        node: endpoint.id().0,
                        start: at,
                        end: Instant::now(),
                        flags: 0,
                    });
                }
                let bytes = msg.wire_bytes();
                endpoint.send_sized(dst, msg, bytes);
            }
            if now >= next_sweep {
                self.sweep_expired(now);
                next_sweep = now + sweep_every;
            }
        }
        // Final sync so a cleanly shut-down log is durable even under
        // GroupCommit/Buffered, and any still-parked acks are released
        // (waiters whose records the backend persistently refuses to
        // sync are dropped — exactly a never-sent ack).
        self.sync_wal();
        while let Some((mark, dst, msg, parked)) = wal_waiters.pop_front() {
            if mark <= self.wal_durable {
                if let (Some(spans), Some((c, at))) = (self.spans.as_ref(), parked) {
                    spans.record(RawSpan {
                        parent: c.span,
                        trace: c.trace,
                        kind: SpanKind::WalPark,
                        node: endpoint.id().0,
                        start: at,
                        end: Instant::now(),
                        flags: 0,
                    });
                }
                let bytes = msg.wire_bytes();
                endpoint.send_sized(dst, msg, bytes);
            }
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_simnet::NodeId;
    use acn_txir::{FieldId, ObjClass, ObjectVal, Value};

    const C: ObjClass = ObjClass::new(0, "C");
    const OBJ: ObjectId = ObjectId::new(C, 1);
    const OBJ2: ObjectId = ObjectId::new(C, 2);

    fn txn(seq: u64) -> TxnId {
        TxnId {
            client: NodeId(10),
            seq,
        }
    }

    fn val(v: i64) -> ObjectVal {
        ObjectVal::from_fields([(FieldId(0), Value::Int(v))])
    }

    fn server() -> Server {
        Server::new(WindowConfig::default())
    }

    fn read(s: &mut Server, t: TxnId, obj: ObjectId, validate: Vec<(ObjectId, u64)>) -> Msg {
        s.handle(
            Msg::ReadReq {
                txn: t,
                req: 1,
                obj,
                validate,
                sample: vec![],
            },
            Instant::now(),
        )
        .unwrap()
    }

    #[test]
    fn fresh_read_returns_version_zero() {
        let mut s = server();
        match read(&mut s, txn(1), OBJ, vec![]) {
            Msg::ReadResp {
                version,
                invalid,
                locked,
                ..
            } => {
                assert_eq!(version, 0);
                assert!(invalid.is_empty());
                assert!(!locked);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_commit_cycle() {
        let mut s = server();
        let t = txn(1);
        // Prepare: lock OBJ, validate read version 0.
        let resp = s
            .handle(
                Msg::PrepareReq {
                    txn: t,
                    req: 2,
                    validate: vec![(OBJ, 0)],
                    writes: vec![(OBJ, 0)],
                },
                Instant::now(),
            )
            .unwrap();
        assert!(matches!(resp, Msg::PrepareResp { vote: true, .. }));
        // Commit at version 1.
        let ack = s
            .handle(
                Msg::CommitReq {
                    txn: t,
                    req: 3,
                    writes: vec![(OBJ, 1, val(42))],
                },
                Instant::now(),
            )
            .unwrap();
        assert!(matches!(ack, Msg::CommitAck { req: 3 }));
        // A later read sees it.
        match read(&mut s, txn(2), OBJ, vec![]) {
            Msg::ReadResp { version, value, .. } => {
                assert_eq!(version, 1);
                assert_eq!(value, val(42));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_read_set_is_reported() {
        let mut s = server();
        let t = txn(1);
        s.handle(
            Msg::PrepareReq {
                txn: t,
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: t,
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            Instant::now(),
        );
        // Reader presents version 0 for OBJ while reading OBJ2.
        match read(&mut s, txn(2), OBJ2, vec![(OBJ, 0)]) {
            Msg::ReadResp { invalid, .. } => assert_eq!(invalid, vec![OBJ]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locked_object_reported_but_validation_still_runs() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        match read(&mut s, txn(2), OBJ, vec![]) {
            Msg::ReadResp { locked, .. } => assert!(locked),
            other => panic!("{other:?}"),
        }
        // The lock holder itself is not "locked out".
        match read(&mut s, txn(1), OBJ, vec![]) {
            Msg::ReadResp { locked, .. } => assert!(!locked),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prepare_lock_conflict_votes_no_and_rolls_back_partial_locks() {
        let mut s = server();
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(1),
                    req: 1,
                    validate: vec![],
                    writes: vec![(OBJ, 0)],
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        // txn 2 wants OBJ2 then OBJ: OBJ conflicts, OBJ2 must be released,
        // and the response blames the object it could not lock.
        match s.handle(
            Msg::PrepareReq {
                txn: txn(2),
                req: 2,
                validate: vec![],
                writes: vec![(OBJ2, 0), (OBJ, 0)],
            },
            Instant::now(),
        ) {
            Some(Msg::PrepareResp {
                vote: false,
                locked,
                ..
            }) => assert_eq!(locked, Some(OBJ), "lock conflict must be attributable"),
            other => panic!("{other:?}"),
        }
        // txn 3 can now lock OBJ2 — proof the partial lock was released.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(3),
                    req: 3,
                    validate: vec![],
                    writes: vec![(OBJ2, 0)],
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(s.stats().prepare_rejects, 1);
    }

    #[test]
    fn prepare_rejects_stale_validation() {
        let mut s = server();
        // Install version 2.
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 2, val(5))],
            },
            Instant::now(),
        );
        // txn 2 read version 1 (stale).
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 3,
                    validate: vec![(OBJ, 1)],
                    writes: vec![(OBJ2, 0)],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::PrepareResp { vote, invalid, .. } => {
                assert!(!vote);
                assert_eq!(invalid, vec![OBJ]);
            }
            other => panic!("{other:?}"),
        }
        // And its failed prepare released the OBJ2 lock.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(3),
                    req: 4,
                    validate: vec![],
                    writes: vec![(OBJ2, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
    }

    #[test]
    fn abort_releases_locks() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::AbortReq {
                txn: txn(1),
                req: 2,
            },
            Instant::now(),
        );
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 3,
                    validate: vec![],
                    writes: vec![(OBJ, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(s.stats().aborts, 1);
    }

    #[test]
    fn contention_query_reports_committed_writes() {
        let mut s = Server::new(WindowConfig {
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            t0,
        );
        // Query one window later (within [window, 2·window), so the write
        // window is the last *complete* one — any later and it is stale).
        match s
            .handle(
                Msg::ContentionReq {
                    req: 3,
                    classes: vec![C.id, 99],
                },
                t0 + Duration::from_millis(150),
            )
            .unwrap()
        {
            Msg::ContentionResp { levels, .. } => {
                assert_eq!(levels.len(), 2);
                assert!(levels[0].1 > 0.0, "class C saw a write");
                assert_eq!(levels[1].1, 0.0, "unknown class is cold");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn piggybacked_sample_rides_on_read_responses() {
        let mut s = Server::new(WindowConfig {
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            t0,
        );
        // Sample one window later so the write window is the last complete
        // one (a multi-window gap would — correctly — read as cold).
        let resp = s
            .handle(
                Msg::ReadReq {
                    txn: txn(2),
                    req: 3,
                    obj: OBJ2,
                    validate: vec![],
                    sample: vec![C.id, 77],
                },
                t0 + Duration::from_millis(150),
            )
            .unwrap();
        match resp {
            Msg::ReadResp { levels, .. } => {
                assert_eq!(levels.len(), 2);
                assert!(levels[0].1 > 0.0, "class C saw a committed write");
                assert_eq!(levels[1].1, 0.0);
            }
            other => panic!("{other:?}"),
        }
        // An empty sample costs nothing on the wire.
        match read(&mut s, txn(3), OBJ2, vec![]) {
            Msg::ReadResp { levels, .. } => assert!(levels.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_read_serves_all_objects_and_validates_once() {
        let mut s = server();
        // Install OBJ at version 1 so validation has something to catch.
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(5))],
            },
            Instant::now(),
        );
        let resp = s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(2),
                    req: 3,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![(OBJ, 0)],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap();
        match resp {
            Msg::ReadBatchResp { reads, invalid, .. } => {
                assert_eq!(reads.len(), 2, "one reply per requested object");
                assert_eq!(reads[0].obj, OBJ);
                assert_eq!(reads[0].version, 1);
                assert_eq!(reads[0].value, val(5));
                assert_eq!(reads[1].obj, OBJ2);
                assert_eq!(reads[1].version, 0);
                assert_eq!(invalid, vec![OBJ], "stale delta entry reported");
            }
            other => panic!("{other:?}"),
        }
        // Each object counts as a read; the round counts once.
        assert_eq!(s.stats().reads, 2);
        assert_eq!(s.stats().batched_reads, 1);
    }

    #[test]
    fn batch_read_reports_locks_per_object() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        match s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(2),
                    req: 2,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::ReadBatchResp { reads, .. } => {
                assert!(reads[0].locked, "OBJ is protected by txn 1");
                assert!(!reads[1].locked);
            }
            other => panic!("{other:?}"),
        }
        // The lock holder itself is not locked out of its own objects.
        match s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(1),
                    req: 3,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::ReadBatchResp { reads, .. } => {
                assert!(!reads[0].locked);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expired_prepare_releases_locks_and_entry() {
        let mut s = server();
        s.set_prepared_ttl(Duration::from_millis(10));
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
        // Before the TTL: nothing to reclaim.
        assert_eq!(s.sweep_expired(t0 + Duration::from_millis(5)), 0);
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
        // Past the TTL: entry gone, lock free, counter bumped.
        assert_eq!(s.sweep_expired(t0 + Duration::from_millis(11)), 1);
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
        assert_eq!(s.stats().expired_prepares, 1);
        assert!(s.prepared.is_empty(), "prepared map must not leak");
        // A new transaction can prepare the same object.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 2,
                    validate: vec![],
                    writes: vec![(OBJ, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        // A straggling abort from the expired txn is harmless.
        s.handle(
            Msg::AbortReq {
                txn: txn(1),
                req: 3,
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(2)));
    }

    #[test]
    fn sweep_leaves_fresh_prepares_alone() {
        let mut s = server();
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        // Default TTL is 30 s; a sweep "now" must not touch the entry.
        assert_eq!(s.sweep_expired(t0 + Duration::from_secs(1)), 0);
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
    }

    #[test]
    fn duplicate_prepare_replays_vote_without_relocking() {
        let mut s = server();
        let prepare = Msg::PrepareReq {
            txn: txn(1),
            req: 1,
            validate: vec![(OBJ, 0)],
            writes: vec![(OBJ, 0)],
        };
        assert!(matches!(
            s.handle(prepare.clone(), Instant::now()),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(9))],
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
        // A delayed duplicate of the original prepare arrives after the
        // commit: it must replay the cached vote, not re-lock OBJ.
        assert!(matches!(
            s.handle(prepare, Instant::now()),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(
            s.store_mut().lock_holder(OBJ),
            None,
            "dup prepare must not resurrect the lock"
        );
        assert_eq!(s.stats().dedup_hits, 1);
        assert_eq!(s.stats().prepares, 1, "the duplicate was not re-executed");
    }

    #[test]
    fn duplicate_commit_applies_once() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        let commit = Msg::CommitReq {
            txn: txn(1),
            req: 2,
            writes: vec![(OBJ, 1, val(7))],
        };
        assert!(matches!(
            s.handle(commit.clone(), Instant::now()),
            Some(Msg::CommitAck { req: 2 })
        ));
        assert!(matches!(
            s.handle(commit, Instant::now()),
            Some(Msg::CommitAck { req: 2 })
        ));
        assert_eq!(s.stats().commits, 1, "duplicate commit not re-applied");
        assert_eq!(s.stats().dedup_hits, 1);
    }

    #[test]
    fn distinct_requests_of_same_txn_are_not_deduped() {
        // The same transaction legitimately issues prepare (req a) and
        // commit (req b): different request ids, both must execute.
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 10,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 11,
                writes: vec![(OBJ, 1, val(3))],
            },
            Instant::now(),
        );
        assert_eq!(s.stats().prepares, 1);
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn dedup_cache_is_bounded() {
        let mut s = server();
        for i in 0..(super::DEDUP_CAPACITY as u64 + 10) {
            s.handle(
                Msg::AbortReq {
                    txn: txn(i),
                    req: i,
                },
                Instant::now(),
            );
        }
        assert_eq!(s.completed.len(), super::DEDUP_CAPACITY);
        assert_eq!(s.completed_order.len(), super::DEDUP_CAPACITY);
        // The oldest entries were evicted: replaying the very first abort
        // re-executes it (harmlessly) rather than hitting the cache.
        s.handle(
            Msg::AbortReq {
                txn: txn(0),
                req: 0,
            },
            Instant::now(),
        );
        assert_eq!(s.stats().dedup_hits, 0);
    }

    fn sync_cfg(rank: usize, servers: usize) -> SyncConfig {
        use acn_quorum::DaryTree;
        SyncConfig {
            quorums: LevelQuorums::new(DaryTree::new(servers, 3)),
            rank,
            servers,
        }
    }

    fn commit_obj(s: &mut Server, t: TxnId, req_base: u64, obj: ObjectId, ver: u64, v: i64) {
        s.handle(
            Msg::PrepareReq {
                txn: t,
                req: req_base,
                validate: vec![],
                writes: vec![(obj, ver - 1)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: t,
                req: req_base + 1,
                writes: vec![(obj, ver, val(v))],
            },
            Instant::now(),
        );
    }

    #[test]
    fn amnesia_wipe_refuses_reads_and_votes_until_quorum_synced() {
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        commit_obj(&mut s, txn(1), 1, OBJ, 1, 42);
        s.wipe_for_amnesia();
        assert!(s.is_syncing());
        assert_eq!(s.stats().amnesia_wipes, 1);
        assert_eq!(s.stats().digest.total_objects(), 0, "store is gone");

        // Reads: refused with a Syncing response, not served as v0.
        match s
            .handle(
                Msg::ReadReq {
                    txn: txn(2),
                    req: 7,
                    obj: OBJ,
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::Syncing { req } => assert_eq!(req, 7),
            other => panic!("{other:?}"),
        }
        match s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(2),
                    req: 8,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::Syncing { req } => assert_eq!(req, 8),
            other => panic!("{other:?}"),
        }
        // Votes: refused, flagged as a sync refusal, nothing locked.
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(3),
                    req: 9,
                    validate: vec![(OBJ, 0)],
                    writes: vec![(OBJ, 0)],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::PrepareResp {
                vote,
                syncing,
                invalid,
                locked,
                ..
            } => {
                assert!(!vote);
                assert!(syncing);
                assert!(invalid.is_empty() && locked.is_none());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
        assert_eq!(s.stats().sync_vote_refusals, 1);
        assert_eq!(s.stats().sync_read_refusals, 2);

        // Phase 2 of an already-decided commit still applies.
        s.handle(
            Msg::CommitReq {
                txn: txn(4),
                req: 10,
                writes: vec![(OBJ2, 2, val(9))],
            },
            Instant::now(),
        );

        // Probe names every peer and carries the current incarnation.
        let (peers, probe) = s.sync_probe().expect("syncing server probes");
        assert_eq!(peers, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let inc = match probe {
            Msg::SyncReq { incarnation, .. } => incarnation,
            other => panic!("{other:?}"),
        };

        // A healthy peer's inventory: OBJ at version 4. With 4 servers
        // (tree levels {0} and {1,2,3}) the recovering rank 0 needs a
        // majority of the deepest level — two peers — to finish.
        let entries = vec![(OBJ, 4u64, val(40))];
        s.handle_from(
            NodeId(1),
            Msg::SyncResp {
                req: 1,
                incarnation: inc,
                entries: entries.clone(),
            },
            Instant::now(),
        );
        assert!(s.is_syncing(), "one responder is below a read quorum");
        s.handle_from(
            NodeId(2),
            Msg::SyncResp {
                req: 1,
                incarnation: inc,
                entries: entries.clone(),
            },
            Instant::now(),
        );
        assert!(!s.is_syncing(), "two peers cover a read quorum: done");
        assert_eq!(s.stats().syncs_completed, 1);
        assert!(s.stats().sync_objects_received >= 1);

        // Reads serve the synced copy; the mid-sync commit survived.
        match read(&mut s, txn(5), OBJ, vec![]) {
            Msg::ReadResp { version, value, .. } => {
                assert_eq!(version, 4);
                assert_eq!(value, val(40));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.store_mut().read(OBJ2).0, 2, "mid-sync commit kept");
        // Votes work again.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(6),
                    req: 11,
                    validate: vec![(OBJ, 4)],
                    writes: vec![(OBJ, 4)],
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
    }

    #[test]
    fn sync_refusal_is_not_cached_for_dedup() {
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        s.wipe_for_amnesia();
        let prepare = Msg::PrepareReq {
            txn: txn(1),
            req: 1,
            validate: vec![],
            writes: vec![(OBJ, 0)],
        };
        assert!(matches!(
            s.handle(prepare.clone(), Instant::now()),
            Some(Msg::PrepareResp { syncing: true, .. })
        ));
        // Catch-up completes…
        let (_, probe) = s.sync_probe().unwrap();
        let inc = match probe {
            Msg::SyncReq { incarnation, .. } => incarnation,
            other => panic!("{other:?}"),
        };
        for rank in 1..=3u32 {
            s.handle_from(
                NodeId(rank),
                Msg::SyncResp {
                    req: 1,
                    incarnation: inc,
                    entries: vec![],
                },
                Instant::now(),
            );
        }
        // …and the *same* (txn, req) retry must now get a real vote, not
        // a dedup replay of the refusal.
        match s.handle(prepare, Instant::now()).unwrap() {
            Msg::PrepareResp { vote, syncing, .. } => {
                assert!(vote, "retry after catch-up gets a real vote");
                assert!(!syncing);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn restart_replays_wal_then_delta_syncs_only_missing_writes() {
        use crate::wal::MemLog;
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        s.set_persistence(Box::new(MemLog::new()));
        commit_obj(&mut s, txn(1), 1, OBJ, 1, 42);
        commit_obj(&mut s, txn(2), 3, OBJ2, 1, 7);

        s.recover_from_restart();
        assert!(s.is_syncing(), "still needs the delta from peers");
        assert_eq!(s.stats().restart_replays, 1);
        assert_eq!(s.stats().amnesia_wipes, 0);
        // 2 grants + 2 commits came back from the log…
        assert_eq!(s.stats().wal_records_replayed, 4);
        // …and rebuilt the store without touching the network.
        assert_eq!(s.store_mut().version(OBJ), 1);
        assert_eq!(s.store_mut().version(OBJ2), 1);

        // A client retrying a pre-crash phase-2 hits the rebuilt dedup
        // cache instead of re-executing (or being refused while syncing).
        match s
            .handle(
                Msg::CommitReq {
                    txn: txn(1),
                    req: 2,
                    writes: vec![(OBJ, 1, val(42))],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::CommitAck { req } => assert_eq!(req, 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().dedup_hits, 1);

        // The probe advertises what the replica already has…
        let (peers, probe) = s.sync_probe().expect("restarting server probes");
        assert_eq!(peers, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let (inc, mut known) = match probe {
            Msg::SyncDeltaReq {
                incarnation, known, ..
            } => (incarnation, known),
            other => panic!("expected delta probe, got {other:?}"),
        };
        known.sort();
        assert_eq!(known, vec![(OBJ, 1), (OBJ2, 1)]);

        // …so peers ship only the missed write; its cost is counted.
        let delta = vec![(OBJ2, 3u64, val(9))];
        for rank in [1u32, 2] {
            s.handle_from(
                NodeId(rank),
                Msg::SyncResp {
                    req: 1,
                    incarnation: inc,
                    entries: delta.clone(),
                },
                Instant::now(),
            );
        }
        assert!(!s.is_syncing(), "two peers cover a read quorum");
        assert_eq!(s.stats().delta_objects_fetched, 2, "one entry per peer");
        assert_eq!(s.store_mut().version(OBJ2), 3);
        assert_eq!(s.stats().syncs_completed, 1);
    }

    #[test]
    fn delta_sync_request_serves_only_newer_versions() {
        let mut s = server();
        s.set_sync_config(sync_cfg(1, 4));
        commit_obj(&mut s, txn(1), 1, OBJ, 2, 20);
        commit_obj(&mut s, txn(2), 3, OBJ2, 5, 50);
        match s
            .handle(
                Msg::SyncDeltaReq {
                    req: 6,
                    incarnation: 3,
                    known: vec![(OBJ, 2), (OBJ2, 1)],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::SyncResp {
                req,
                incarnation,
                entries,
            } => {
                assert_eq!((req, incarnation), (6, 3), "echoed for correlation");
                // OBJ is already current on the requester; only OBJ2 moved.
                assert_eq!(entries, vec![(OBJ2, 5, val(50))]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().syncs_served, 1);
        // A syncing peer must not seed anyone, delta or not.
        s.wipe_for_amnesia();
        assert!(s
            .handle(
                Msg::SyncDeltaReq {
                    req: 7,
                    incarnation: 4,
                    known: vec![],
                },
                Instant::now()
            )
            .is_none());
        assert_eq!(s.stats().syncs_served, 1);
    }

    #[test]
    fn amnesia_resets_the_wal_so_restart_replays_nothing() {
        use crate::wal::MemLog;
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        s.set_persistence(Box::new(MemLog::new()));
        commit_obj(&mut s, txn(1), 1, OBJ, 1, 42);
        s.wipe_for_amnesia();
        // If a restart lands after the disk was wiped, the replay must
        // find only the amnesia incarnation bump — no resurrected state.
        s.recover_from_restart();
        assert_eq!(s.stats().wal_records_replayed, 1, "just the bump");
        assert_eq!(s.store_mut().version(OBJ), 0);
        // And the incarnation keeps moving strictly forward through both
        // faults, so pre-amnesia sync responses stay refusable.
        let (_, probe) = s.sync_probe().unwrap();
        match probe {
            Msg::SyncDeltaReq { incarnation, .. } => assert_eq!(incarnation, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_sync_resp_from_earlier_incarnation_is_ignored() {
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        s.wipe_for_amnesia(); // incarnation 1
        s.wipe_for_amnesia(); // incarnation 2: the one that counts
        let (_, probe) = s.sync_probe().unwrap();
        let inc = match probe {
            Msg::SyncReq { incarnation, .. } => incarnation,
            other => panic!("{other:?}"),
        };
        for rank in 1..=3u32 {
            s.handle_from(
                NodeId(rank),
                Msg::SyncResp {
                    req: 1,
                    incarnation: inc - 1, // answers the *first* recovery
                    entries: vec![(OBJ, 9, val(9))],
                },
                Instant::now(),
            );
        }
        assert!(s.is_syncing(), "stale responses must not complete sync");
        assert_eq!(s.store_mut().version(OBJ), 0, "stale entries not applied");
        for rank in 1..=3u32 {
            s.handle_from(
                NodeId(rank),
                Msg::SyncResp {
                    req: 2,
                    incarnation: inc,
                    entries: vec![(OBJ, 9, val(9))],
                },
                Instant::now(),
            );
        }
        assert!(!s.is_syncing());
        assert_eq!(s.store_mut().version(OBJ), 9);
    }

    #[test]
    fn syncing_peer_serves_no_inventory() {
        let mut s = server();
        s.set_sync_config(sync_cfg(1, 4));
        commit_obj(&mut s, txn(1), 1, OBJ, 1, 5);
        // Healthy: serves its inventory.
        match s
            .handle(
                Msg::SyncReq {
                    req: 3,
                    incarnation: 7,
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::SyncResp {
                req,
                incarnation,
                entries,
            } => {
                assert_eq!((req, incarnation), (3, 7), "echoed for correlation");
                assert_eq!(entries, vec![(OBJ, 1, val(5))]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().syncs_served, 1);
        // Amnesiac: must not seed another replica with wiped state.
        s.wipe_for_amnesia();
        assert!(s
            .handle(
                Msg::SyncReq {
                    req: 4,
                    incarnation: 8
                },
                Instant::now()
            )
            .is_none());
        assert_eq!(s.stats().syncs_served, 1);
    }

    #[test]
    fn repair_write_applies_forward_only_without_reply() {
        let mut s = server();
        commit_obj(&mut s, txn(1), 1, OBJ, 5, 50);
        let reply = s.handle(
            Msg::RepairWrite {
                req: 1,
                writes: vec![(OBJ, 3, val(30)), (OBJ2, 7, val(70))],
            },
            Instant::now(),
        );
        assert!(reply.is_none(), "repair writes are fire-and-forget");
        assert_eq!(s.store_mut().version(OBJ), 5, "stale repair ignored");
        assert_eq!(s.store_mut().version(OBJ2), 7, "fresh repair applied");
        assert_eq!(s.stats().repair_writes_received, 1);
        assert_eq!(s.stats().repair_writes_applied, 1, "only the effective one");
        // A repair on a protected object must not touch the lock.
        s.handle(
            Msg::PrepareReq {
                txn: txn(9),
                req: 9,
                validate: vec![],
                writes: vec![(OBJ, 5)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::RepairWrite {
                req: 2,
                writes: vec![(OBJ, 4, val(4))],
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(9)));
        assert_eq!(s.store_mut().version(OBJ), 5);
    }

    #[test]
    fn lazy_sweep_fires_from_the_message_path() {
        // Regression: a server sitting in a long idle gap must reclaim
        // expired prepares when the *next message* arrives, not only when
        // its service loop's timer cadence happens to fire.
        let mut s = server();
        s.set_prepared_ttl(Duration::from_millis(10));
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
        // Long idle gap, then a conflicting prepare arrives. The lazy
        // sweep (cadence max(ttl/4, 100 ms)) must run first and release
        // the expired lock, so the new prepare succeeds immediately.
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 2,
                    validate: vec![],
                    writes: vec![(OBJ, 0)],
                },
                t0 + Duration::from_millis(150),
            )
            .unwrap()
        {
            Msg::PrepareResp { vote, .. } => assert!(vote, "expired lock must not block"),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().expired_prepares, 1);
    }

    #[test]
    fn wipe_loses_prepared_and_dedup_state() {
        let mut s = server();
        s.set_sync_config(sync_cfg(0, 4));
        let prepare = Msg::PrepareReq {
            txn: txn(1),
            req: 1,
            validate: vec![],
            writes: vec![(OBJ, 0)],
        };
        s.handle(prepare, Instant::now());
        commit_obj(&mut s, txn(2), 5, OBJ2, 1, 1);
        assert!(!s.prepared.is_empty());
        assert!(!s.completed.is_empty());
        s.wipe_for_amnesia();
        assert!(s.prepared.is_empty(), "prepared table wiped");
        assert!(s.completed.is_empty(), "dedup cache wiped");
        assert!(s.completed_order.is_empty());
        assert!(s.store_mut().is_empty(), "store wiped");
    }

    /// Test backend: fails chosen 1-based append calls and the first
    /// `failing_syncs` sync calls, delegating everything else (including
    /// load/replay) to a [`crate::wal::MemLog`].
    struct FlakyLog {
        inner: crate::wal::MemLog,
        appends_seen: u64,
        fail_appends: Vec<u64>,
        failing_syncs: u32,
    }

    impl FlakyLog {
        fn failing_appends(fail_appends: Vec<u64>) -> Self {
            FlakyLog {
                inner: crate::wal::MemLog::new(),
                appends_seen: 0,
                fail_appends,
                failing_syncs: 0,
            }
        }

        fn failing_syncs(failing_syncs: u32) -> Self {
            FlakyLog {
                inner: crate::wal::MemLog::new(),
                appends_seen: 0,
                fail_appends: vec![],
                failing_syncs,
            }
        }
    }

    impl Persistence for FlakyLog {
        fn append(&mut self, rec: &WalRecord) -> Result<(), crate::wal::WalError> {
            self.appends_seen += 1;
            if self.fail_appends.contains(&self.appends_seen) {
                return Err(crate::wal::WalError::Io);
            }
            self.inner.append(rec)
        }

        fn sync(&mut self) -> Result<(), crate::wal::WalError> {
            if self.failing_syncs > 0 {
                self.failing_syncs -= 1;
                return Err(crate::wal::WalError::Io);
            }
            self.inner.sync()
        }

        fn load(&mut self) -> crate::wal::LoadedLog {
            self.inner.load()
        }

        fn reset(&mut self) {
            self.inner.reset();
        }
    }

    #[test]
    fn failed_commit_append_is_retried_so_the_ack_waits_for_durability() {
        let mut s = server();
        // Append 1 is the prepare grant; append 2 — the commit decision —
        // fails once.
        s.set_persistence(Box::new(FlakyLog::failing_appends(vec![2])));
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        let ack = s
            .handle(
                Msg::CommitReq {
                    txn: txn(1),
                    req: 2,
                    writes: vec![(OBJ, 1, val(42))],
                },
                Instant::now(),
            )
            .unwrap();
        // The quorum's decision still applies locally…
        assert!(matches!(ack, Msg::CommitAck { req: 2 }));
        assert_eq!(s.store_mut().version(OBJ), 1);
        // …but the record is queued for retry and the server is degraded:
        // the covering watermark sits past the queued record, so the
        // service loop would park the ack, not release it.
        assert_eq!(s.stats().wal_io_errors, 1);
        assert!(s.wal_failed);
        assert_eq!(s.wal_retry.len(), 1);
        assert_eq!(s.wal_appended + s.wal_retry.len() as u64, 2);
        assert!(s.wal_durable < 2, "commit record must not count durable");
        // The sync path re-appends the queue ahead of the sync: fully
        // durable, degraded mode over, nothing left queued.
        assert!(s.sync_wal());
        assert!(s.wal_retry.is_empty());
        assert_eq!((s.wal_appended, s.wal_durable), (2, 2));
        assert!(!s.wal_failed);
        // Proof the record physically landed: a restart replays it.
        s.recover_from_restart();
        assert_eq!(s.store_mut().version(OBJ), 1);
    }

    #[test]
    fn crash_before_append_retry_loses_record_and_queue_together() {
        let mut s = server();
        s.set_persistence(Box::new(FlakyLog::failing_appends(vec![2])));
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(42))],
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().version(OBJ), 1, "decision applied pre-crash");
        // Crash before the retry lands: the record never reached the log
        // and the retry queue was memory-only — both are gone, exactly
        // like the ack the service loop had parked (and drops on the
        // crash epoch). Losing an *unacked* commit is the contract.
        s.recover_from_restart();
        assert!(s.wal_retry.is_empty(), "retry queue dies with the process");
        assert_eq!(s.store_mut().version(OBJ), 0, "unacked commit lost");
        assert!(
            s.prepared.contains_key(&txn(1)),
            "the synced grant replays as still-prepared; the TTL sweep reclaims it"
        );
    }

    #[test]
    fn degraded_mode_backs_off_instead_of_hot_spinning() {
        let mut s = server();
        s.set_persistence(Box::new(FlakyLog::failing_syncs(2)));
        commit_obj(&mut s, txn(1), 1, OBJ, 1, 42);
        assert!(!s.sync_wal());
        assert_eq!(s.wal_backoff, WAL_RETRY_BACKOFF_MIN);
        // The deadline honours the backoff instead of reading "due now":
        // that gap is what keeps the service loop off a 100% CPU spin
        // while the backend stays broken.
        let now = Instant::now();
        assert_eq!(s.wal_sync_deadline(now, true), s.wal_retry_after);
        assert!(s.wal_retry_after.is_some());
        assert!(!s.sync_wal());
        assert_eq!(s.wal_backoff, WAL_RETRY_BACKOFF_MIN * 2, "doubles");
        assert!(s.sync_wal(), "third attempt heals");
        assert!(!s.wal_failed);
        assert_eq!(s.wal_backoff, Duration::ZERO, "healthy resets backoff");
        assert_eq!(
            s.wal_sync_deadline(Instant::now(), false),
            None,
            "clean log schedules nothing"
        );
    }

    #[test]
    fn read_only_prepare_validates_without_locking() {
        let mut s = server();
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(1),
                    req: 1,
                    validate: vec![(OBJ, 0)],
                    writes: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::PrepareResp { vote, .. } => assert!(vote),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
    }
}
