//! The quorum server: request handling and the service loop.

use crate::contention::{ContentionWindow, WindowConfig};
use crate::messages::{Msg, ReqId, TxnId};
use crate::store::Store;
use acn_simnet::{Endpoint, RecvError};
use acn_txir::ObjectId;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Counters a server reports on shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Read requests served.
    pub reads: u64,
    /// Prepare requests processed.
    pub prepares: u64,
    /// Prepares that voted no.
    pub prepare_rejects: u64,
    /// Commit requests applied.
    pub commits: u64,
    /// Abort requests processed.
    pub aborts: u64,
    /// Explicit contention queries answered.
    pub contention_queries: u64,
    /// Batched read rounds served (objects are also counted in `reads`).
    pub batched_reads: u64,
    /// Prepared transactions whose locks were reclaimed because the client
    /// never finished phase 2 within the prepare TTL.
    pub expired_prepares: u64,
    /// Retried 2PC requests answered from the dedup cache instead of being
    /// re-executed (duplicate (txn, req) Prepare/Commit/Abort).
    pub dedup_hits: u64,
}

/// Locks a transaction holds on this replica between prepare and phase 2.
struct PreparedTxn {
    objs: Vec<ObjectId>,
    /// When the prepare was granted — drives the expiry sweep.
    at: Instant,
}

/// One quorum node: a full replica of every object plus commit-lock and
/// contention bookkeeping. The server is single-threaded — it owns its
/// state and processes messages in arrival order, so each request is
/// handled atomically with respect to the others (the concurrency in the
/// system is *between* nodes, as in the paper's deployment).
pub struct Server {
    store: Store,
    contention: ContentionWindow,
    /// Objects locked at prepare per transaction, so abort/commit releases
    /// exactly what was acquired.
    prepared: HashMap<TxnId, PreparedTxn>,
    /// How long a prepared transaction may sit without a phase-2 message
    /// before its entry and locks are reclaimed.
    prepared_ttl: Duration,
    /// Replies already sent for 2PC requests, keyed by (txn, req): a
    /// retried or chaos-duplicated Prepare/Commit/Abort is answered from
    /// here instead of re-executing. This is what makes the client's
    /// same-request-id retry loop genuinely idempotent — without it, a
    /// delayed duplicate PrepareReq arriving *after* the commit would
    /// re-lock the write-set and strand the locks until the TTL sweep.
    completed: HashMap<(TxnId, ReqId), Msg>,
    /// Insertion order of `completed`, for FIFO eviction.
    completed_order: VecDeque<(TxnId, ReqId)>,
    stats: ServerStats,
}

/// Bound on the dedup cache. Eviction is FIFO: a reply only needs to
/// survive as long as its client might still retransmit the request, so
/// the oldest entry is always the safest to shed.
const DEDUP_CAPACITY: usize = 8192;

/// Default prepare TTL. Must comfortably exceed the client's worst-case
/// phase-2 latency (`rpc_timeout × (quorum_retries + 1)`, 4 s with default
/// [`crate::ClientConfig`]): reclaiming a *live* client's locks would let
/// another transaction commit in between, and version monotonicity would
/// then silently discard the first client's phase-2 writes on this replica.
const DEFAULT_PREPARED_TTL: Duration = Duration::from_secs(30);

impl Server {
    /// A fresh replica with an empty store.
    pub fn new(window: WindowConfig) -> Self {
        Server {
            store: Store::new(),
            contention: ContentionWindow::new(window),
            prepared: HashMap::new(),
            prepared_ttl: DEFAULT_PREPARED_TTL,
            completed: HashMap::new(),
            completed_order: VecDeque::new(),
            stats: ServerStats::default(),
        }
    }

    /// Override the prepare TTL (see `DEFAULT_PREPARED_TTL` for the safety
    /// bound it must respect relative to client timeouts).
    pub fn set_prepared_ttl(&mut self, ttl: Duration) {
        self.prepared_ttl = ttl;
    }

    /// Reclaim prepared entries older than the TTL, releasing their locks.
    /// Returns how many transactions were expired. Invoked periodically by
    /// [`Server::run`]; public so tests (and embedders with their own
    /// service loops) can drive it directly.
    pub fn sweep_expired(&mut self, now: Instant) -> usize {
        let ttl = self.prepared_ttl;
        let expired: Vec<TxnId> = self
            .prepared
            .iter()
            .filter(|(_, p)| now.duration_since(p.at) >= ttl)
            .map(|(&t, _)| t)
            .collect();
        for txn in &expired {
            if let Some(p) = self.prepared.remove(txn) {
                for obj in p.objs {
                    self.store.unlock(obj, *txn);
                }
            }
        }
        self.stats.expired_prepares += expired.len() as u64;
        expired.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Direct store access for tests and cluster seeding.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Handle one request, producing the reply to send back (if any).
    ///
    /// 2PC requests (Prepare/Commit/Abort) are deduped by (txn, req): a
    /// duplicate — from a client retry whose response was lost, or from
    /// chaos duplication in flight — replays the original reply without
    /// touching locks, versions, or counters. Reads are not deduped; they
    /// are naturally idempotent and re-reading gives the client fresher
    /// data.
    pub fn handle(&mut self, msg: Msg, now: Instant) -> Option<Msg> {
        let dedup_key = match &msg {
            Msg::PrepareReq { txn, req, .. }
            | Msg::CommitReq { txn, req, .. }
            | Msg::AbortReq { txn, req } => Some((*txn, *req)),
            _ => None,
        };
        if let Some(key) = dedup_key {
            if let Some(reply) = self.completed.get(&key) {
                self.stats.dedup_hits += 1;
                return Some(reply.clone());
            }
        }
        let reply = self.handle_fresh(msg, now);
        if let (Some(key), Some(r)) = (dedup_key, &reply) {
            if self.completed.len() >= DEDUP_CAPACITY {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
            if self.completed.insert(key, r.clone()).is_none() {
                self.completed_order.push_back(key);
            }
        }
        reply
    }

    /// [`Server::handle`] past the dedup cache: executes the request.
    fn handle_fresh(&mut self, msg: Msg, now: Instant) -> Option<Msg> {
        match msg {
            Msg::ReadReq {
                txn,
                req,
                obj,
                validate,
                sample,
            } => {
                self.stats.reads += 1;
                let (version, value, lock) = self.store.read(obj);
                // Incremental validation runs regardless of lock state: a
                // stale read-set is worth reporting even when the requested
                // object is protected.
                let invalid: Vec<ObjectId> = validate
                    .iter()
                    .filter(|&&(o, v)| self.store.version(o) > v)
                    .map(|&(o, _)| o)
                    .collect();
                let locked = matches!(lock, Some(holder) if holder != txn);
                let levels = sample
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                Some(Msg::ReadResp {
                    req,
                    version,
                    value,
                    invalid,
                    locked,
                    levels,
                })
            }
            Msg::ReadBatchReq {
                txn,
                req,
                objs,
                validate,
                sample,
            } => {
                // The server is single-threaded, so the whole batch is
                // served against one atomic snapshot of the store. Each
                // object bumps the read counter once, exactly as its own
                // ReadReq would have.
                self.stats.reads += objs.len() as u64;
                self.stats.batched_reads += 1;
                let invalid: Vec<ObjectId> = validate
                    .iter()
                    .filter(|&&(o, v)| self.store.version(o) > v)
                    .map(|&(o, _)| o)
                    .collect();
                let reads = objs
                    .iter()
                    .map(|&obj| {
                        let (version, value, lock) = self.store.read(obj);
                        crate::messages::BatchRead {
                            obj,
                            version,
                            value,
                            locked: matches!(lock, Some(holder) if holder != txn),
                        }
                    })
                    .collect();
                let levels = sample
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                Some(Msg::ReadBatchResp {
                    req,
                    reads,
                    invalid,
                    levels,
                })
            }
            Msg::PrepareReq {
                txn,
                req,
                validate,
                writes,
            } => {
                self.stats.prepares += 1;
                // Lock the write-set all-or-nothing on this replica.
                let mut locked: Vec<ObjectId> = Vec::with_capacity(writes.len());
                let mut lock_conflict: Option<ObjectId> = None;
                let mut vote = true;
                for &(obj, _) in &writes {
                    if self.store.try_lock(obj, txn) {
                        locked.push(obj);
                    } else {
                        // Blame the contended object for the rejection,
                        // locally and in the response.
                        self.contention.record_abort(obj, now);
                        lock_conflict = Some(obj);
                        vote = false;
                        break;
                    }
                }
                let mut invalid = Vec::new();
                if vote {
                    invalid = validate
                        .iter()
                        .filter(|&&(o, v)| self.store.version(o) > v)
                        .map(|&(o, _)| o)
                        .collect();
                    vote = invalid.is_empty();
                    for &o in &invalid {
                        self.contention.record_abort(o, now);
                    }
                }
                if vote {
                    // Read-only prepares (no writes) hold no locks and need
                    // no phase 2, so nothing is recorded for them.
                    if !locked.is_empty() {
                        self.prepared.insert(
                            txn,
                            PreparedTxn {
                                objs: locked,
                                at: now,
                            },
                        );
                    }
                } else {
                    for obj in locked {
                        self.store.unlock(obj, txn);
                    }
                    self.stats.prepare_rejects += 1;
                }
                Some(Msg::PrepareResp {
                    req,
                    vote,
                    invalid,
                    locked: lock_conflict,
                })
            }
            Msg::CommitReq { txn, req, writes } => {
                self.stats.commits += 1;
                for (obj, version, value) in writes {
                    self.store.apply(obj, version, value, txn);
                    self.contention.record_write(obj, now);
                }
                self.prepared.remove(&txn);
                Some(Msg::CommitAck { req })
            }
            Msg::AbortReq { txn, req } => {
                self.stats.aborts += 1;
                if let Some(p) = self.prepared.remove(&txn) {
                    for obj in p.objs {
                        self.store.unlock(obj, txn);
                    }
                }
                Some(Msg::AbortAck { req })
            }
            Msg::ContentionReq { req, classes } => {
                self.stats.contention_queries += 1;
                let levels = classes
                    .iter()
                    .map(|&c| (c, self.contention.class_level(c, now)))
                    .collect();
                let abort_levels = classes
                    .iter()
                    .map(|&c| (c, self.contention.class_abort_level(c, now)))
                    .collect();
                Some(Msg::ContentionResp {
                    req,
                    levels,
                    abort_levels,
                })
            }
            Msg::Shutdown => None,
            // Responses should never arrive at a server.
            other => {
                debug_assert!(false, "server received non-request {other:?}");
                None
            }
        }
    }

    /// Service loop: receive, handle, reply, until `Msg::Shutdown` arrives
    /// or the network closes. Returns the final stats.
    ///
    /// Periodically sweeps expired prepared transactions, so a client that
    /// crashed (or timed out) between prepare and phase 2 cannot leave its
    /// write-set locked — and the `prepared` map growing — forever.
    pub fn run(mut self, endpoint: Endpoint<Msg>) -> ServerStats {
        let sweep_every = (self.prepared_ttl / 4).max(Duration::from_millis(100));
        let mut next_sweep = Instant::now() + sweep_every;
        loop {
            match endpoint.recv_timeout(Duration::from_millis(100)) {
                Ok((src, Msg::Shutdown)) => {
                    let _ = src;
                    break;
                }
                Ok((src, msg)) => {
                    if let Some(reply) = self.handle(msg, Instant::now()) {
                        let bytes = reply.wire_bytes();
                        endpoint.send_sized(src, reply, bytes);
                    }
                }
                Err(RecvError::Timeout) => {}
                Err(RecvError::Closed) => break,
            }
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep_expired(now);
                next_sweep = now + sweep_every;
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_simnet::NodeId;
    use acn_txir::{FieldId, ObjClass, ObjectVal, Value};

    const C: ObjClass = ObjClass::new(0, "C");
    const OBJ: ObjectId = ObjectId::new(C, 1);
    const OBJ2: ObjectId = ObjectId::new(C, 2);

    fn txn(seq: u64) -> TxnId {
        TxnId {
            client: NodeId(10),
            seq,
        }
    }

    fn val(v: i64) -> ObjectVal {
        ObjectVal::from_fields([(FieldId(0), Value::Int(v))])
    }

    fn server() -> Server {
        Server::new(WindowConfig::default())
    }

    fn read(s: &mut Server, t: TxnId, obj: ObjectId, validate: Vec<(ObjectId, u64)>) -> Msg {
        s.handle(
            Msg::ReadReq {
                txn: t,
                req: 1,
                obj,
                validate,
                sample: vec![],
            },
            Instant::now(),
        )
        .unwrap()
    }

    #[test]
    fn fresh_read_returns_version_zero() {
        let mut s = server();
        match read(&mut s, txn(1), OBJ, vec![]) {
            Msg::ReadResp {
                version,
                invalid,
                locked,
                ..
            } => {
                assert_eq!(version, 0);
                assert!(invalid.is_empty());
                assert!(!locked);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_commit_cycle() {
        let mut s = server();
        let t = txn(1);
        // Prepare: lock OBJ, validate read version 0.
        let resp = s
            .handle(
                Msg::PrepareReq {
                    txn: t,
                    req: 2,
                    validate: vec![(OBJ, 0)],
                    writes: vec![(OBJ, 0)],
                },
                Instant::now(),
            )
            .unwrap();
        assert!(matches!(resp, Msg::PrepareResp { vote: true, .. }));
        // Commit at version 1.
        let ack = s
            .handle(
                Msg::CommitReq {
                    txn: t,
                    req: 3,
                    writes: vec![(OBJ, 1, val(42))],
                },
                Instant::now(),
            )
            .unwrap();
        assert!(matches!(ack, Msg::CommitAck { req: 3 }));
        // A later read sees it.
        match read(&mut s, txn(2), OBJ, vec![]) {
            Msg::ReadResp { version, value, .. } => {
                assert_eq!(version, 1);
                assert_eq!(value, val(42));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_read_set_is_reported() {
        let mut s = server();
        let t = txn(1);
        s.handle(
            Msg::PrepareReq {
                txn: t,
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: t,
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            Instant::now(),
        );
        // Reader presents version 0 for OBJ while reading OBJ2.
        match read(&mut s, txn(2), OBJ2, vec![(OBJ, 0)]) {
            Msg::ReadResp { invalid, .. } => assert_eq!(invalid, vec![OBJ]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locked_object_reported_but_validation_still_runs() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        match read(&mut s, txn(2), OBJ, vec![]) {
            Msg::ReadResp { locked, .. } => assert!(locked),
            other => panic!("{other:?}"),
        }
        // The lock holder itself is not "locked out".
        match read(&mut s, txn(1), OBJ, vec![]) {
            Msg::ReadResp { locked, .. } => assert!(!locked),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prepare_lock_conflict_votes_no_and_rolls_back_partial_locks() {
        let mut s = server();
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(1),
                    req: 1,
                    validate: vec![],
                    writes: vec![(OBJ, 0)],
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        // txn 2 wants OBJ2 then OBJ: OBJ conflicts, OBJ2 must be released,
        // and the response blames the object it could not lock.
        match s.handle(
            Msg::PrepareReq {
                txn: txn(2),
                req: 2,
                validate: vec![],
                writes: vec![(OBJ2, 0), (OBJ, 0)],
            },
            Instant::now(),
        ) {
            Some(Msg::PrepareResp {
                vote: false,
                locked,
                ..
            }) => assert_eq!(locked, Some(OBJ), "lock conflict must be attributable"),
            other => panic!("{other:?}"),
        }
        // txn 3 can now lock OBJ2 — proof the partial lock was released.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(3),
                    req: 3,
                    validate: vec![],
                    writes: vec![(OBJ2, 0)],
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(s.stats().prepare_rejects, 1);
    }

    #[test]
    fn prepare_rejects_stale_validation() {
        let mut s = server();
        // Install version 2.
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 2, val(5))],
            },
            Instant::now(),
        );
        // txn 2 read version 1 (stale).
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 3,
                    validate: vec![(OBJ, 1)],
                    writes: vec![(OBJ2, 0)],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::PrepareResp { vote, invalid, .. } => {
                assert!(!vote);
                assert_eq!(invalid, vec![OBJ]);
            }
            other => panic!("{other:?}"),
        }
        // And its failed prepare released the OBJ2 lock.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(3),
                    req: 4,
                    validate: vec![],
                    writes: vec![(OBJ2, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
    }

    #[test]
    fn abort_releases_locks() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::AbortReq {
                txn: txn(1),
                req: 2,
            },
            Instant::now(),
        );
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 3,
                    validate: vec![],
                    writes: vec![(OBJ, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(s.stats().aborts, 1);
    }

    #[test]
    fn contention_query_reports_committed_writes() {
        let mut s = Server::new(WindowConfig {
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            t0,
        );
        // Query one window later (within [window, 2·window), so the write
        // window is the last *complete* one — any later and it is stale).
        match s
            .handle(
                Msg::ContentionReq {
                    req: 3,
                    classes: vec![C.id, 99],
                },
                t0 + Duration::from_millis(150),
            )
            .unwrap()
        {
            Msg::ContentionResp { levels, .. } => {
                assert_eq!(levels.len(), 2);
                assert!(levels[0].1 > 0.0, "class C saw a write");
                assert_eq!(levels[1].1, 0.0, "unknown class is cold");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn piggybacked_sample_rides_on_read_responses() {
        let mut s = Server::new(WindowConfig {
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(1))],
            },
            t0,
        );
        // Sample one window later so the write window is the last complete
        // one (a multi-window gap would — correctly — read as cold).
        let resp = s
            .handle(
                Msg::ReadReq {
                    txn: txn(2),
                    req: 3,
                    obj: OBJ2,
                    validate: vec![],
                    sample: vec![C.id, 77],
                },
                t0 + Duration::from_millis(150),
            )
            .unwrap();
        match resp {
            Msg::ReadResp { levels, .. } => {
                assert_eq!(levels.len(), 2);
                assert!(levels[0].1 > 0.0, "class C saw a committed write");
                assert_eq!(levels[1].1, 0.0);
            }
            other => panic!("{other:?}"),
        }
        // An empty sample costs nothing on the wire.
        match read(&mut s, txn(3), OBJ2, vec![]) {
            Msg::ReadResp { levels, .. } => assert!(levels.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_read_serves_all_objects_and_validates_once() {
        let mut s = server();
        // Install OBJ at version 1 so validation has something to catch.
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(5))],
            },
            Instant::now(),
        );
        let resp = s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(2),
                    req: 3,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![(OBJ, 0)],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap();
        match resp {
            Msg::ReadBatchResp { reads, invalid, .. } => {
                assert_eq!(reads.len(), 2, "one reply per requested object");
                assert_eq!(reads[0].obj, OBJ);
                assert_eq!(reads[0].version, 1);
                assert_eq!(reads[0].value, val(5));
                assert_eq!(reads[1].obj, OBJ2);
                assert_eq!(reads[1].version, 0);
                assert_eq!(invalid, vec![OBJ], "stale delta entry reported");
            }
            other => panic!("{other:?}"),
        }
        // Each object counts as a read; the round counts once.
        assert_eq!(s.stats().reads, 2);
        assert_eq!(s.stats().batched_reads, 1);
    }

    #[test]
    fn batch_read_reports_locks_per_object() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        match s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(2),
                    req: 2,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::ReadBatchResp { reads, .. } => {
                assert!(reads[0].locked, "OBJ is protected by txn 1");
                assert!(!reads[1].locked);
            }
            other => panic!("{other:?}"),
        }
        // The lock holder itself is not locked out of its own objects.
        match s
            .handle(
                Msg::ReadBatchReq {
                    txn: txn(1),
                    req: 3,
                    objs: vec![OBJ, OBJ2],
                    validate: vec![],
                    sample: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::ReadBatchResp { reads, .. } => {
                assert!(!reads[0].locked);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expired_prepare_releases_locks_and_entry() {
        let mut s = server();
        s.set_prepared_ttl(Duration::from_millis(10));
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
        // Before the TTL: nothing to reclaim.
        assert_eq!(s.sweep_expired(t0 + Duration::from_millis(5)), 0);
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
        // Past the TTL: entry gone, lock free, counter bumped.
        assert_eq!(s.sweep_expired(t0 + Duration::from_millis(11)), 1);
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
        assert_eq!(s.stats().expired_prepares, 1);
        assert!(s.prepared.is_empty(), "prepared map must not leak");
        // A new transaction can prepare the same object.
        assert!(matches!(
            s.handle(
                Msg::PrepareReq {
                    txn: txn(2),
                    req: 2,
                    validate: vec![],
                    writes: vec![(OBJ, 0)]
                },
                Instant::now()
            ),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        // A straggling abort from the expired txn is harmless.
        s.handle(
            Msg::AbortReq {
                txn: txn(1),
                req: 3,
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(2)));
    }

    #[test]
    fn sweep_leaves_fresh_prepares_alone() {
        let mut s = server();
        let t0 = Instant::now();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            t0,
        );
        // Default TTL is 30 s; a sweep "now" must not touch the entry.
        assert_eq!(s.sweep_expired(t0 + Duration::from_secs(1)), 0);
        assert_eq!(s.store_mut().lock_holder(OBJ), Some(txn(1)));
    }

    #[test]
    fn duplicate_prepare_replays_vote_without_relocking() {
        let mut s = server();
        let prepare = Msg::PrepareReq {
            txn: txn(1),
            req: 1,
            validate: vec![(OBJ, 0)],
            writes: vec![(OBJ, 0)],
        };
        assert!(matches!(
            s.handle(prepare.clone(), Instant::now()),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 2,
                writes: vec![(OBJ, 1, val(9))],
            },
            Instant::now(),
        );
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
        // A delayed duplicate of the original prepare arrives after the
        // commit: it must replay the cached vote, not re-lock OBJ.
        assert!(matches!(
            s.handle(prepare, Instant::now()),
            Some(Msg::PrepareResp { vote: true, .. })
        ));
        assert_eq!(
            s.store_mut().lock_holder(OBJ),
            None,
            "dup prepare must not resurrect the lock"
        );
        assert_eq!(s.stats().dedup_hits, 1);
        assert_eq!(s.stats().prepares, 1, "the duplicate was not re-executed");
    }

    #[test]
    fn duplicate_commit_applies_once() {
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 1,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        let commit = Msg::CommitReq {
            txn: txn(1),
            req: 2,
            writes: vec![(OBJ, 1, val(7))],
        };
        assert!(matches!(
            s.handle(commit.clone(), Instant::now()),
            Some(Msg::CommitAck { req: 2 })
        ));
        assert!(matches!(
            s.handle(commit, Instant::now()),
            Some(Msg::CommitAck { req: 2 })
        ));
        assert_eq!(s.stats().commits, 1, "duplicate commit not re-applied");
        assert_eq!(s.stats().dedup_hits, 1);
    }

    #[test]
    fn distinct_requests_of_same_txn_are_not_deduped() {
        // The same transaction legitimately issues prepare (req a) and
        // commit (req b): different request ids, both must execute.
        let mut s = server();
        s.handle(
            Msg::PrepareReq {
                txn: txn(1),
                req: 10,
                validate: vec![],
                writes: vec![(OBJ, 0)],
            },
            Instant::now(),
        );
        s.handle(
            Msg::CommitReq {
                txn: txn(1),
                req: 11,
                writes: vec![(OBJ, 1, val(3))],
            },
            Instant::now(),
        );
        assert_eq!(s.stats().prepares, 1);
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn dedup_cache_is_bounded() {
        let mut s = server();
        for i in 0..(super::DEDUP_CAPACITY as u64 + 10) {
            s.handle(
                Msg::AbortReq {
                    txn: txn(i),
                    req: i,
                },
                Instant::now(),
            );
        }
        assert_eq!(s.completed.len(), super::DEDUP_CAPACITY);
        assert_eq!(s.completed_order.len(), super::DEDUP_CAPACITY);
        // The oldest entries were evicted: replaying the very first abort
        // re-executes it (harmlessly) rather than hitting the cache.
        s.handle(
            Msg::AbortReq {
                txn: txn(0),
                req: 0,
            },
            Instant::now(),
        );
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn read_only_prepare_validates_without_locking() {
        let mut s = server();
        match s
            .handle(
                Msg::PrepareReq {
                    txn: txn(1),
                    req: 1,
                    validate: vec![(OBJ, 0)],
                    writes: vec![],
                },
                Instant::now(),
            )
            .unwrap()
        {
            Msg::PrepareResp { vote, .. } => assert!(vote),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.store_mut().lock_holder(OBJ), None);
    }
}
