//! Error and abort taxonomy.

use acn_txir::ObjectId;
use std::fmt;

/// How far a conflict rolls a transaction back — the heart of QR-CN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortScope {
    /// Only the running sub-transaction is rolled back and re-issued
    /// (every invalidated object was first read by it).
    Child,
    /// The whole (parent) transaction restarts: an object in the parent's
    /// history — read before the running sub-transaction started — was
    /// invalidated, or the conflict surfaced at commit time.
    Parent,
}

/// Failures surfaced by the DTM layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtmError {
    /// Incremental validation found stale read-set entries.
    Invalidated {
        /// The objects whose versions went stale.
        objs: Vec<ObjectId>,
    },
    /// Two-phase commit failed: a lock conflict or stale read at prepare.
    Conflict {
        /// Stale read-set entries reported by the quorum (empty for pure
        /// lock conflicts).
        invalid: Vec<ObjectId>,
        /// Write-set objects the quorum failed to lock (empty for pure
        /// validation failures). Feeds abort attribution: without it a
        /// lock conflict blamed no object at all.
        locked: Vec<ObjectId>,
        /// True when at least one quorum member refused to vote because it
        /// was still catching up after a crash-with-amnesia. A conflict
        /// with *only* this set (no stale, no locked objects) is transient
        /// recovery back-pressure, not data contention — the abort
        /// attribution layer classifies it separately.
        syncing: bool,
        /// True when at least one quorum member refused to vote because
        /// its WAL could not make the grant durable. Like `syncing`,
        /// transient storage back-pressure classified separately by the
        /// abort attribution layer.
        wal_refused: bool,
    },
    /// A read kept hitting `protected` objects and gave up after the
    /// configured number of retries.
    LockedOut {
        /// The object that stayed protected.
        obj: ObjectId,
    },
    /// No quorum available (too many failed servers) or RPC timeout.
    Unavailable,
}

impl fmt::Display for DtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtmError::Invalidated { objs } => write!(f, "read-set invalidated: {objs:?}"),
            DtmError::Conflict {
                invalid,
                locked,
                syncing,
                wal_refused,
            } => {
                write!(
                    f,
                    "commit conflict (stale: {invalid:?}, locked: {locked:?}, syncing: \
                     {syncing}, wal_refused: {wal_refused})"
                )
            }
            DtmError::LockedOut { obj } => write!(f, "read locked out on {obj}"),
            DtmError::Unavailable => write!(f, "quorum unavailable"),
        }
    }
}

impl std::error::Error for DtmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::ObjClass;

    #[test]
    fn display_is_informative() {
        const C: ObjClass = ObjClass::new(0, "C");
        let e = DtmError::Invalidated {
            objs: vec![ObjectId::new(C, 1)],
        };
        assert!(e.to_string().contains("C#1"));
        assert!(DtmError::Unavailable.to_string().contains("unavailable"));
        assert!(DtmError::LockedOut {
            obj: ObjectId::new(C, 2)
        }
        .to_string()
        .contains("C#2"));
    }

    #[test]
    fn scopes_are_distinct() {
        assert_ne!(AbortScope::Child, AbortScope::Parent);
    }
}
