//! The transaction client: quorum RPC, remote reads with incremental
//! validation, two-phase commit, and contention queries.

use crate::error::DtmError;
use crate::messages::{Msg, ReqId, TxnId, ValidateEntry, Version};
use acn_quorum::LevelQuorums;
use acn_simnet::{Endpoint, Network, NodeId, RecvError};
use acn_txir::{ObjectId, ObjectVal};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Client-side protocol knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long to wait for a full quorum of responses before treating the
    /// round as failed and re-selecting a quorum.
    pub rpc_timeout: Duration,
    /// How many quorum re-selections before reporting `Unavailable`.
    pub quorum_retries: usize,
    /// How many times to re-issue a read that keeps hitting `protected`
    /// objects before giving up with `LockedOut`.
    pub locked_retries: usize,
    /// Pause between locked-read retries (lets the in-flight commit drain).
    pub locked_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // Generous: the simulation may run many more threads than
            // cores, so a slice-starved server must not look failed.
            rpc_timeout: Duration::from_secs(1),
            quorum_retries: 3,
            locked_retries: 20,
            locked_backoff: Duration::from_micros(200),
        }
    }
}

/// Message counters for one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Quorum read rounds completed.
    pub remote_reads: u64,
    /// Read rounds re-issued because an object was `protected`.
    pub locked_read_retries: u64,
    /// Reads that surfaced a stale read-set entry.
    pub read_invalidations: u64,
    /// Prepare rounds issued.
    pub prepares: u64,
    /// Transactions committed (including read-only validations).
    pub commits: u64,
    /// Prepare rounds that voted no.
    pub conflict_aborts: u64,
    /// Operations abandoned for lack of a quorum.
    pub quorum_unavailable: u64,
}

/// A client node's connection to the DTM: it executes remote operations on
/// behalf of the transactions running on this node. One `DtmClient` is
/// owned by one thread (the paper's "client").
pub struct DtmClient {
    endpoint: Endpoint<Msg>,
    net: Network<Msg>,
    quorums: LevelQuorums,
    /// Rank→node mapping: server rank `r` lives at `NodeId(r)` (servers
    /// occupy the first node ids).
    seed: u64,
    next_req: ReqId,
    next_txn: u64,
    cfg: ClientConfig,
    stats: ClientStats,
    /// Classes whose contention levels should be piggybacked on every
    /// remote read (empty = piggybacking off).
    piggyback_classes: Vec<u16>,
    /// Latest piggybacked per-class levels (max across quorum replies).
    piggybacked: HashMap<u16, f64>,
}

impl DtmClient {
    /// Wire a client endpoint to the cluster's quorum system.
    pub fn new(
        net: Network<Msg>,
        endpoint: Endpoint<Msg>,
        quorums: LevelQuorums,
        cfg: ClientConfig,
    ) -> Self {
        let seed = u64::from(endpoint.id().0);
        DtmClient {
            endpoint,
            net,
            quorums,
            seed,
            next_req: 0,
            next_txn: 0,
            cfg,
            stats: ClientStats::default(),
            piggyback_classes: Vec::new(),
            piggybacked: HashMap::new(),
        }
    }

    /// Message/outcome counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Piggyback a contention sample of `classes` on every subsequent
    /// remote read, instead of (or in addition to) explicit
    /// [`DtmClient::query_contention`] rounds.
    pub fn set_piggyback_classes(&mut self, classes: Vec<u16>) {
        self.piggyback_classes = classes;
    }

    /// The most recent piggybacked per-class contention levels (empty
    /// until a remote read has carried a sample).
    pub fn piggybacked_levels(&self) -> &HashMap<u16, f64> {
        &self.piggybacked
    }

    /// The client's network node id.
    pub fn node(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Start a transaction: allocate its globally unique id.
    pub fn begin(&mut self) -> TxnId {
        let txn = TxnId {
            client: self.endpoint.id(),
            seq: self.next_txn,
        };
        self.next_txn += 1;
        txn
    }

    fn server_node(rank: usize) -> NodeId {
        NodeId(rank as u32)
    }

    fn alive_fn(&self) -> impl Fn(usize) -> bool {
        let failed = self.net.failed_set();
        move |rank: usize| !failed.contains(&Self::server_node(rank))
    }

    /// Scatter a request to `members` and gather all their responses.
    fn rpc_quorum(
        &mut self,
        members: &[usize],
        build: impl Fn(ReqId) -> Msg,
    ) -> Result<Vec<Msg>, DtmError> {
        let req = self.next_req;
        self.next_req += 1;
        let msg = build(req);
        for &m in members {
            self.endpoint.send(Self::server_node(m), msg.clone());
        }
        let deadline = Instant::now() + self.cfg.rpc_timeout;
        let mut got = Vec::with_capacity(members.len());
        while got.len() < members.len() {
            match self.endpoint.recv_deadline(deadline) {
                Ok((_, m)) if m.response_req() == Some(req) => got.push(m),
                Ok(_) => continue, // stray response from a timed-out round
                Err(RecvError::Timeout) | Err(RecvError::Closed) => {
                    return Err(DtmError::Unavailable)
                }
            }
        }
        Ok(got)
    }

    /// [`Self::rpc_quorum`] with timeout retries. Safe only for idempotent
    /// requests — which all QR-DTM protocol messages are: re-prepare
    /// re-acquires the same locks and re-validates, re-commit re-applies
    /// capped by version monotonicity, re-abort re-releases. Stray
    /// responses from an earlier round are discarded by request id.
    fn rpc_quorum_retry(
        &mut self,
        members: &[usize],
        build: impl Fn(ReqId) -> Msg,
    ) -> Result<Vec<Msg>, DtmError> {
        let mut last = DtmError::Unavailable;
        for _ in 0..=self.cfg.quorum_retries {
            match self.rpc_quorum(members, &build) {
                Ok(got) => return Ok(got),
                Err(e) => last = e,
            }
        }
        self.stats.quorum_unavailable += 1;
        Err(last)
    }

    /// Remote read of `obj` through a read quorum, presenting `validate`
    /// (the transaction's read-set) for incremental validation. Returns the
    /// freshest `(version, value)` among the quorum's replies.
    pub fn remote_read(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        validate: &[ValidateEntry],
    ) -> Result<(Version, ObjectVal), DtmError> {
        let mut locked_attempts = 0usize;
        let mut quorum_attempts = 0usize;
        loop {
            let alive = self.alive_fn();
            let Some(quorum) = self
                .quorums
                .read_quorum(self.seed.wrapping_add(quorum_attempts as u64), &alive)
            else {
                self.stats.quorum_unavailable += 1;
                return Err(DtmError::Unavailable);
            };
            let validate_owned = validate.to_vec();
            let sample = self.piggyback_classes.clone();
            let resps = match self.rpc_quorum(&quorum, |req| Msg::ReadReq {
                txn,
                req,
                obj,
                validate: validate_owned.clone(),
                sample: sample.clone(),
            }) {
                Ok(r) => r,
                Err(DtmError::Unavailable) => {
                    quorum_attempts += 1;
                    if quorum_attempts > self.cfg.quorum_retries {
                        self.stats.quorum_unavailable += 1;
                        return Err(DtmError::Unavailable);
                    }
                    continue;
                }
                Err(other) => return Err(other),
            };
            self.stats.remote_reads += 1;

            let mut invalid: Vec<ObjectId> = Vec::new();
            let mut any_locked = false;
            let mut best: Option<(Version, ObjectVal)> = None;
            let mut sampled: HashMap<u16, f64> = HashMap::new();
            for r in resps {
                if let Msg::ReadResp {
                    version,
                    value,
                    invalid: inv,
                    locked,
                    levels,
                    ..
                } = r
                {
                    invalid.extend(inv);
                    for (c, l) in levels {
                        let e = sampled.entry(c).or_insert(0.0);
                        if l > *e {
                            *e = l;
                        }
                    }
                    if locked {
                        any_locked = true;
                    } else if best.as_ref().map_or(true, |(v, _)| version > *v) {
                        best = Some((version, value));
                    }
                }
            }
            if !sampled.is_empty() {
                self.piggybacked = sampled;
            }
            if !invalid.is_empty() {
                invalid.sort_unstable();
                invalid.dedup();
                self.stats.read_invalidations += 1;
                return Err(DtmError::Invalidated { objs: invalid });
            }
            if any_locked {
                // The object (or a replica of it) is protected by an
                // in-flight commit: back off briefly and re-read. Reading
                // around the lock would be unsafe only for the value — the
                // freshest unlocked replica may be pre-commit — so we must
                // retry rather than mix.
                locked_attempts += 1;
                self.stats.locked_read_retries += 1;
                if locked_attempts > self.cfg.locked_retries {
                    return Err(DtmError::LockedOut { obj });
                }
                std::thread::sleep(self.cfg.locked_backoff);
                continue;
            }
            return Ok(best.expect("quorum is non-empty"));
        }
    }

    /// Commit a transaction with two-phase commit against a write quorum.
    ///
    /// * `validate` — the full read-set (write-set read versions included);
    /// * `writes` — `(object, version-read, new value)`; the committed
    ///   version is `version-read + 1`.
    ///
    /// Read-only transactions (`writes` empty) run a single validation
    /// round against a read quorum — no locks, no phase 2.
    pub fn commit(
        &mut self,
        txn: TxnId,
        validate: &[ValidateEntry],
        writes: &[(ObjectId, Version, ObjectVal)],
    ) -> Result<(), DtmError> {
        let alive = self.alive_fn();
        let quorum = if writes.is_empty() {
            self.quorums.read_quorum(self.seed, &alive)
        } else {
            self.quorums.write_quorum(self.seed, &alive)
        };
        let Some(quorum) = quorum else {
            self.stats.quorum_unavailable += 1;
            return Err(DtmError::Unavailable);
        };

        // Phase 1: prepare.
        self.stats.prepares += 1;
        let validate_owned = validate.to_vec();
        let write_versions: Vec<(ObjectId, Version)> =
            writes.iter().map(|&(o, v, _)| (o, v)).collect();
        let resps = self.rpc_quorum_retry(&quorum, |req| Msg::PrepareReq {
            txn,
            req,
            validate: validate_owned.clone(),
            writes: write_versions.clone(),
        })?;
        let mut all_yes = true;
        let mut invalid: Vec<ObjectId> = Vec::new();
        for r in &resps {
            if let Msg::PrepareResp { vote, invalid: inv, .. } = r {
                if !vote {
                    all_yes = false;
                }
                invalid.extend(inv.iter().copied());
            }
        }
        if writes.is_empty() {
            // Read-only: validation outcome is the commit outcome.
            return if all_yes {
                self.stats.commits += 1;
                Ok(())
            } else {
                invalid.sort_unstable();
                invalid.dedup();
                self.stats.conflict_aborts += 1;
                Err(DtmError::Conflict { invalid })
            };
        }

        if !all_yes {
            // Phase 2: abort everywhere (also the replicas that voted yes).
            let _ = self.rpc_quorum_retry(&quorum, |req| Msg::AbortReq { txn, req });
            invalid.sort_unstable();
            invalid.dedup();
            self.stats.conflict_aborts += 1;
            return Err(DtmError::Conflict { invalid });
        }

        // Phase 2: commit.
        let commit_writes: Vec<(ObjectId, Version, ObjectVal)> = writes
            .iter()
            .map(|(o, v, val)| (*o, v + 1, val.clone()))
            .collect();
        self.rpc_quorum_retry(&quorum, |req| Msg::CommitReq {
            txn,
            req,
            writes: commit_writes.clone(),
        })?;
        self.stats.commits += 1;
        Ok(())
    }

    /// Dynamic Module: fetch per-class write contention levels from a read
    /// quorum, taking the maximum across replicas (each replica only counts
    /// the commits it participated in).
    pub fn query_contention(&mut self, classes: &[u16]) -> Result<HashMap<u16, f64>, DtmError> {
        Ok(self.query_contention_full(classes)?.writes)
    }

    /// Like [`DtmClient::query_contention`], but returning both run-time
    /// parameters the paper's Dynamic Module collects: per-class write
    /// levels and per-class abort ratios.
    pub fn query_contention_full(
        &mut self,
        classes: &[u16],
    ) -> Result<ContentionSample, DtmError> {
        let alive = self.alive_fn();
        let Some(quorum) = self.quorums.read_quorum(self.seed, &alive) else {
            self.stats.quorum_unavailable += 1;
            return Err(DtmError::Unavailable);
        };
        let classes_owned = classes.to_vec();
        let resps = self.rpc_quorum_retry(&quorum, |req| Msg::ContentionReq {
            req,
            classes: classes_owned.clone(),
        })?;
        let mut out = ContentionSample {
            writes: classes.iter().map(|&c| (c, 0.0)).collect(),
            aborts: classes.iter().map(|&c| (c, 0.0)).collect(),
        };
        let fold = |into: &mut HashMap<u16, f64>, pairs: Vec<(u16, f64)>| {
            for (c, l) in pairs {
                let e = into.entry(c).or_insert(0.0);
                if l > *e {
                    *e = l;
                }
            }
        };
        for r in resps {
            if let Msg::ContentionResp {
                levels,
                abort_levels,
                ..
            } = r
            {
                fold(&mut out.writes, levels);
                fold(&mut out.aborts, abort_levels);
            }
        }
        Ok(out)
    }
}

/// Both run-time parameters the Dynamic Module collects (§V-B): per-class
/// write levels and abort ratios, max-aggregated across the quorum.
#[derive(Debug, Clone, Default)]
pub struct ContentionSample {
    /// Mean writes per written object, per class.
    pub writes: HashMap<u16, f64>,
    /// Mean prepare rejections blamed per object, per class.
    pub aborts: HashMap<u16, f64>,
}
