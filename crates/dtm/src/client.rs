//! The transaction client: quorum RPC, remote reads with incremental
//! validation, two-phase commit, and contention queries.

use crate::error::DtmError;
use crate::history::{CommitRecord, HistoryLog};
use crate::messages::{Msg, ReqId, TxnId, ValidateEntry, Version};
use acn_obs::{PendingSpan, SpanKind, Tracer};
use acn_quorum::LevelQuorums;
use acn_simnet::{Endpoint, Network, NodeId, RecvError};
use acn_txir::{ObjectId, ObjectVal};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side protocol knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long to wait for a full quorum of responses before treating the
    /// round as failed and re-selecting a quorum.
    pub rpc_timeout: Duration,
    /// How many quorum re-selections before reporting `Unavailable`.
    pub quorum_retries: usize,
    /// How many times to re-issue a read that keeps hitting `protected`
    /// objects before giving up with `LockedOut`.
    pub locked_retries: usize,
    /// Pause between locked-read retries (lets the in-flight commit drain).
    pub locked_backoff: Duration,
    /// Base pause before a quorum-RPC retry. Doubles per attempt (capped
    /// at 16×) with uniform jitter, so retries from clients that timed out
    /// together do not stampede back in lock-step.
    pub retry_backoff: Duration,
    /// Read repair: after a quorum read, push the freshest version back to
    /// at most this many lagging responders per round (fire-and-forget
    /// [`Msg::RepairWrite`], no ack awaited). Safe because repairs install
    /// only already-committed versions and the store is forward-only; 0
    /// disables repair.
    pub read_repair_max: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // Generous: the simulation may run many more threads than
            // cores, so a slice-starved server must not look failed.
            rpc_timeout: Duration::from_secs(1),
            quorum_retries: 3,
            locked_retries: 20,
            locked_backoff: Duration::from_micros(200),
            retry_backoff: Duration::from_micros(200),
            read_repair_max: 2,
        }
    }
}

/// Message counters for one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Quorum read rounds completed.
    pub remote_reads: u64,
    /// Read rounds re-issued because an object was `protected`.
    pub locked_read_retries: u64,
    /// Reads that surfaced a stale read-set entry.
    pub read_invalidations: u64,
    /// Prepare rounds issued.
    pub prepares: u64,
    /// Transactions committed (including read-only validations).
    pub commits: u64,
    /// Prepare rounds that voted no.
    pub conflict_aborts: u64,
    /// Operations abandoned for lack of a quorum.
    pub quorum_unavailable: u64,
    /// Batched read rounds completed (also counted in `remote_reads`).
    pub batched_reads: u64,
    /// Read-set validation entries shipped on read rounds, counted once
    /// per receiving quorum member. Delta validation keeps this linear in
    /// the read-set size; the unbatched path grows quadratically.
    pub validate_entries_sent: u64,
    /// Responses *not* waited for because a read round returned at its
    /// quorum size instead of draining the whole contact group.
    pub quorum_waits_saved: u64,
    /// Quorum RPC rounds re-broadcast after a timeout (same request id,
    /// after backoff).
    pub rpc_retries: u64,
    /// Best-effort abort broadcasts fired when a 2PC round died without a
    /// quorum (e.g. the client found itself on a partition's minority
    /// side), so reachable servers release locks without waiting for the
    /// prepared-entry TTL.
    pub best_effort_aborts: u64,
    /// Read-repair messages sent to lagging responders (fire-and-forget;
    /// whether each repair actually advanced the replica is counted
    /// server-side).
    pub repair_writes_sent: u64,
    /// Responses refused because the replica was catching up after a
    /// crash-with-amnesia: [`Msg::Syncing`] read refusals plus
    /// syncing-flagged prepare no-votes.
    pub sync_refusals_seen: u64,
}

/// A client node's connection to the DTM: it executes remote operations on
/// behalf of the transactions running on this node. One `DtmClient` is
/// owned by one thread (the paper's "client").
pub struct DtmClient {
    endpoint: Endpoint<Msg>,
    net: Network<Msg>,
    quorums: LevelQuorums,
    /// Rank→node mapping: server rank `r` lives at `NodeId(r)` (servers
    /// occupy the first node ids).
    seed: u64,
    next_req: ReqId,
    next_txn: u64,
    cfg: ClientConfig,
    stats: ClientStats,
    /// Classes whose contention levels should be piggybacked on every
    /// remote read (empty = piggybacking off).
    piggyback_classes: Vec<u16>,
    /// Latest piggybacked per-class levels (max across quorum replies).
    piggybacked: HashMap<u16, f64>,
    /// xorshift state for retry-backoff jitter.
    backoff_state: u64,
    /// Cluster-wide committed-history log; every successful commit
    /// (read-only validations included) appends a [`CommitRecord`].
    history: Option<Arc<HistoryLog>>,
    /// Span tracer: when installed *and* a transaction trace is open,
    /// quorum rounds become spans and requests ship wrapped in
    /// [`Msg::Traced`] so servers can parent their own spans to the round.
    tracer: Option<Box<Tracer>>,
}

/// Process-wide client incarnation counter. Two `DtmClient` instances bound
/// to the *same* node id (a slot reused sequentially, or rebuilt after a
/// crash) must not reuse txn/req ids: servers dedup Prepare/Commit/Abort by
/// `(txn, req)`, and a reused id would replay the previous incarnation's
/// cached response instead of executing. Each incarnation gets a disjoint
/// `2^40`-wide id band.
static INCARNATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DtmClient {
    /// Wire a client endpoint to the cluster's quorum system.
    pub fn new(
        net: Network<Msg>,
        endpoint: Endpoint<Msg>,
        quorums: LevelQuorums,
        cfg: ClientConfig,
    ) -> Self {
        let seed = u64::from(endpoint.id().0);
        let id_base = INCARNATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed) << 40;
        DtmClient {
            endpoint,
            net,
            quorums,
            seed,
            next_req: id_base,
            next_txn: id_base,
            cfg,
            stats: ClientStats::default(),
            piggyback_classes: Vec::new(),
            piggybacked: HashMap::new(),
            backoff_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            history: None,
            tracer: None,
        }
    }

    /// Message/outcome counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Attach a cluster-wide committed-history log. Every subsequent
    /// successful commit appends its read/write versions for the
    /// serializability checker.
    pub fn set_history(&mut self, history: Arc<HistoryLog>) {
        self.history = Some(history);
    }

    /// Install a span tracer. The client records one round span per quorum
    /// RPC broadcast and one lock-wait span per locked-read backoff —
    /// but only while the tracer has an open transaction, so seeding and
    /// contention-query traffic stays untraced and unwrapped.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// The installed tracer, for the executor's transaction/Block hooks.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Remove and return the tracer (drained by the driver at run end).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take().map(|b| *b)
    }

    /// Piggyback a contention sample of `classes` on every subsequent
    /// remote read, instead of (or in addition to) explicit
    /// [`DtmClient::query_contention`] rounds.
    pub fn set_piggyback_classes(&mut self, classes: Vec<u16>) {
        self.piggyback_classes = classes;
    }

    /// The most recent piggybacked per-class contention levels (empty
    /// until a remote read has carried a sample).
    pub fn piggybacked_levels(&self) -> &HashMap<u16, f64> {
        &self.piggybacked
    }

    /// The client's network node id.
    pub fn node(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Start a transaction: allocate its globally unique id. Each call is
    /// one execution attempt, so the tracer opens an attempt span here
    /// (closing the previous one as rolled back if the last attempt never
    /// finished — that is what a full restart looks like).
    pub fn begin(&mut self) -> TxnId {
        if let Some(t) = self.tracer.as_mut() {
            t.begin_attempt();
        }
        let txn = TxnId {
            client: self.endpoint.id(),
            seq: self.next_txn,
        };
        self.next_txn += 1;
        txn
    }

    fn server_node(rank: usize) -> NodeId {
        NodeId(rank as u32)
    }

    /// The round-span kind a request message opens.
    fn round_kind(msg: &Msg) -> SpanKind {
        match msg {
            Msg::ReadReq { .. } | Msg::ReadBatchReq { .. } => SpanKind::ReadRound,
            Msg::PrepareReq { .. } => SpanKind::PrepareRound,
            Msg::CommitReq { .. } => SpanKind::CommitRound,
            Msg::AbortReq { .. } => SpanKind::AbortRound,
            _ => SpanKind::QueryRound,
        }
    }

    /// Open a round span for `msg` (only while tracing an open transaction)
    /// and wrap the request with the span's wire context so servers can
    /// parent their queue/handling spans to it. Returns the message to
    /// send, its wire size, and the pending span to close at round end.
    fn trace_round(&mut self, msg: Msg) -> (Msg, u64, Option<PendingSpan>) {
        let bytes = msg.wire_bytes();
        match self
            .tracer
            .as_mut()
            .and_then(|t| t.start_round(Self::round_kind(&msg)))
        {
            Some(p) => (
                Msg::Traced {
                    ctx: p.ctx(),
                    inner: Box::new(msg),
                },
                bytes + 16,
                Some(p),
            ),
            None => (msg, bytes, None),
        }
    }

    /// Close a round span opened by [`DtmClient::trace_round`]. Called on
    /// every exit path — timeouts included — so a server span's parent
    /// always exists client-side.
    fn end_round(&mut self, pending: Option<PendingSpan>, failed: bool) {
        if let (Some(t), Some(p)) = (self.tracer.as_mut(), pending) {
            t.end_round(p, failed);
        }
    }

    fn alive_fn(&self) -> impl Fn(usize) -> bool {
        let failed = self.net.failed_set();
        move |rank: usize| !failed.contains(&Self::server_node(rank))
    }

    /// Collect responses for `req` into `got` until it holds `need` of
    /// them, keeping at most one response **per source node**: the chaos
    /// layer can duplicate a reply in flight, and counting one server twice
    /// toward a quorum would void quorum intersection. Other strays are
    /// discarded by request id.
    ///
    /// A [`Msg::Syncing`] refusal (the replica is catching up after a
    /// crash-with-amnesia) never counts toward the quorum; once refusals
    /// leave fewer than `need` of the `total` contacted members able to
    /// answer, the round fails fast as `Unavailable` instead of burning the
    /// full deadline on replies that cannot arrive.
    fn gather(
        &mut self,
        req: ReqId,
        need: usize,
        total: usize,
        deadline: Instant,
        got: &mut Vec<(NodeId, Msg)>,
    ) -> Result<(), DtmError> {
        let mut refused: Vec<NodeId> = Vec::new();
        while got.len() < need {
            match self.endpoint.recv_deadline(deadline) {
                Ok((src, Msg::Syncing { req: r })) if r == req => {
                    if !refused.contains(&src) {
                        refused.push(src);
                        self.stats.sync_refusals_seen += 1;
                        if total - refused.len() < need {
                            return Err(DtmError::Unavailable);
                        }
                    }
                }
                Ok((src, m))
                    if m.response_req() == Some(req) && !got.iter().any(|&(s, _)| s == src) =>
                {
                    got.push((src, m))
                }
                Ok(_) => continue, // stray or duplicate response
                Err(RecvError::Timeout) | Err(RecvError::Closed) => {
                    return Err(DtmError::Unavailable)
                }
            }
        }
        Ok(())
    }

    /// Sleep a jittered, bounded-exponential backoff before retry `attempt`
    /// (1-based): uniform in `[base·2^(a-1)/2, base·2^(a-1)]`, with the
    /// exponent capped at 16×.
    fn backoff(&mut self, attempt: usize) {
        let factor = 1u32 << (attempt.saturating_sub(1)).min(4);
        let ceil = self.cfg.retry_backoff.saturating_mul(factor);
        // xorshift64* jitter, seeded per client.
        let mut x = self.backoff_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.backoff_state = x;
        let nanos = ceil.as_nanos() as u64;
        if nanos == 0 {
            return;
        }
        let jittered = nanos / 2 + x % (nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// Scatter one request to `members` (a single shared-payload broadcast,
    /// not a clone per member) and gather responses until `need` have
    /// arrived. Responses past `need` are left unread — strays are
    /// discarded by request id on later rounds — and counted as saved
    /// waits.
    fn rpc_round(
        &mut self,
        members: &[usize],
        need: usize,
        build: impl Fn(ReqId) -> Msg,
    ) -> Result<Vec<(NodeId, Msg)>, DtmError> {
        debug_assert!((1..=members.len()).contains(&need));
        let req = self.next_req;
        self.next_req += 1;
        let (msg, bytes, pending) = self.trace_round(build(req));
        let nodes: Vec<NodeId> = members.iter().map(|&m| Self::server_node(m)).collect();
        self.endpoint.broadcast(&nodes, msg, bytes);
        let deadline = Instant::now() + self.cfg.rpc_timeout;
        let mut got = Vec::with_capacity(need);
        let res = self.gather(req, need, members.len(), deadline, &mut got);
        self.end_round(pending, res.is_err());
        res?;
        self.stats.quorum_waits_saved += (members.len() - got.len()) as u64;
        Ok(got)
    }

    /// [`Self::rpc_round`] waiting for *all* members, with timeout retries
    /// (writes and explicit queries need every contacted member's answer).
    ///
    /// One logical request keeps **one** request id across every attempt: a
    /// timeout re-broadcasts the same correlation id after a jittered,
    /// bounded-exponential backoff, responses already gathered are kept
    /// (a retry only needs the members that have not answered yet), and
    /// servers dedup retried Prepare/Commit/Abort by `(txn, req)` so a
    /// request whose *response* was lost is answered from the dedup cache
    /// instead of being re-executed.
    fn rpc_quorum_retry(
        &mut self,
        members: &[usize],
        build: impl Fn(ReqId) -> Msg,
    ) -> Result<Vec<Msg>, DtmError> {
        let req = self.next_req;
        self.next_req += 1;
        let msg = build(req);
        let nodes: Vec<NodeId> = members.iter().map(|&m| Self::server_node(m)).collect();
        let mut got: Vec<(NodeId, Msg)> = Vec::with_capacity(members.len());
        for attempt in 0..=self.cfg.quorum_retries {
            if attempt > 0 {
                self.stats.rpc_retries += 1;
                self.backoff(attempt);
            }
            // Re-broadcast to everyone: servers that already answered hit
            // their dedup cache (or redo an idempotent read), the rest get
            // another chance to respond. Each broadcast is its own round
            // span (a fresh wire context), so a retry's server spans are
            // children of the attempt that actually carried them.
            let (wire, bytes, pending) = self.trace_round(msg.clone());
            self.endpoint.broadcast(&nodes, wire, bytes);
            let deadline = Instant::now() + self.cfg.rpc_timeout;
            let ok = self
                .gather(req, members.len(), members.len(), deadline, &mut got)
                .is_ok();
            self.end_round(pending, !ok);
            if ok {
                return Ok(got.into_iter().map(|(_, m)| m).collect());
            }
        }
        self.stats.quorum_unavailable += 1;
        Err(DtmError::Unavailable)
    }

    /// Fire-and-forget abort to `members`: used when a 2PC round could not
    /// assemble a quorum (this client may be on a partition's minority
    /// side). Reachable servers release their locks now; unreachable ones
    /// fall back to the prepared-entry TTL sweep.
    fn abort_best_effort(&mut self, txn: TxnId, members: &[usize]) {
        let req = self.next_req;
        self.next_req += 1;
        let (msg, bytes, pending) = self.trace_round(Msg::AbortReq { txn, req });
        let nodes: Vec<NodeId> = members.iter().map(|&m| Self::server_node(m)).collect();
        self.endpoint.broadcast(&nodes, msg, bytes);
        // No replies are awaited; close the round span at the broadcast.
        self.end_round(pending, false);
        self.stats.best_effort_aborts += 1;
    }

    /// Remote read of `obj`, presenting `validate` (the transaction's read
    /// set) for incremental validation. Returns the freshest
    /// `(version, value)` among the quorum's replies.
    ///
    /// The request fans out to *every* live member of the designated level
    /// and returns at the first quorum-sized set of replies: any majority
    /// of one level is a valid read quorum (see
    /// [`LevelQuorums::read_group`]), so the round never waits for a
    /// straggler once a majority has answered.
    pub fn remote_read(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        validate: &[ValidateEntry],
    ) -> Result<(Version, ObjectVal), DtmError> {
        let mut locked_attempts = 0usize;
        let mut quorum_attempts = 0usize;
        loop {
            let alive = self.alive_fn();
            let Some((group, need)) = self
                .quorums
                .read_group(self.seed.wrapping_add(quorum_attempts as u64), &alive)
            else {
                self.stats.quorum_unavailable += 1;
                return Err(DtmError::Unavailable);
            };
            let validate_owned = validate.to_vec();
            self.stats.validate_entries_sent += (validate.len() * group.len()) as u64;
            let sample = self.piggyback_classes.clone();
            let resps = match self.rpc_round(&group, need, |req| Msg::ReadReq {
                txn,
                req,
                obj,
                validate: validate_owned.clone(),
                sample: sample.clone(),
            }) {
                Ok(r) => r,
                Err(DtmError::Unavailable) => {
                    quorum_attempts += 1;
                    if quorum_attempts > self.cfg.quorum_retries {
                        self.stats.quorum_unavailable += 1;
                        return Err(DtmError::Unavailable);
                    }
                    continue;
                }
                Err(other) => return Err(other),
            };
            self.stats.remote_reads += 1;

            let mut invalid: Vec<ObjectId> = Vec::new();
            let mut any_locked = false;
            let mut best: Option<(Version, ObjectVal)> = None;
            let mut sampled: HashMap<u16, f64> = HashMap::new();
            // (responder, version it served, was it locked there) — feeds
            // read repair once the freshest version is known.
            let mut served: Vec<(NodeId, Version, bool)> = Vec::with_capacity(resps.len());
            for (src, r) in resps {
                if let Msg::ReadResp {
                    version,
                    value,
                    invalid: inv,
                    locked,
                    levels,
                    ..
                } = r
                {
                    served.push((src, version, locked));
                    invalid.extend(inv);
                    for (c, l) in levels {
                        let e = sampled.entry(c).or_insert(0.0);
                        if l > *e {
                            *e = l;
                        }
                    }
                    if locked {
                        any_locked = true;
                    } else if best.as_ref().is_none_or(|(v, _)| version > *v) {
                        best = Some((version, value));
                    }
                }
            }
            if !sampled.is_empty() {
                self.piggybacked = sampled;
            }
            if !invalid.is_empty() {
                invalid.sort_unstable();
                invalid.dedup();
                self.stats.read_invalidations += 1;
                return Err(DtmError::Invalidated { objs: invalid });
            }
            if any_locked {
                // The object (or a replica of it) is protected by an
                // in-flight commit: back off briefly and re-read. Reading
                // around the lock would be unsafe only for the value — the
                // freshest unlocked replica may be pre-commit — so we must
                // retry rather than mix.
                locked_attempts += 1;
                self.stats.locked_read_retries += 1;
                if locked_attempts > self.cfg.locked_retries {
                    return Err(DtmError::LockedOut { obj });
                }
                let lw = Instant::now();
                std::thread::sleep(self.cfg.locked_backoff);
                if let Some(t) = self.tracer.as_mut() {
                    t.record_plain(SpanKind::LockWait, lw);
                }
                continue;
            }
            let (best_version, best_value) = best.expect("quorum is non-empty");
            // Read repair: push the freshest committed copy back to lagging
            // responders (bounded, fire-and-forget). Locked responders are
            // skipped — the in-flight commit holding the lock will install
            // a version ≥ ours anyway.
            if self.cfg.read_repair_max > 0 && best_version > 0 {
                let lagging: Vec<NodeId> = served
                    .iter()
                    .filter(|&&(_, v, locked)| !locked && v < best_version)
                    .map(|&(src, _, _)| src)
                    .take(self.cfg.read_repair_max)
                    .collect();
                if !lagging.is_empty() {
                    let req = self.next_req;
                    self.next_req += 1;
                    let msg = Msg::RepairWrite {
                        req,
                        writes: vec![(obj, best_version, best_value.clone())],
                    };
                    let bytes = msg.wire_bytes();
                    self.endpoint.broadcast(&lagging, msg, bytes);
                    self.stats.repair_writes_sent += lagging.len() as u64;
                }
            }
            return Ok((best_version, best_value));
        }
    }

    /// Remote read of several objects in **one** quorum round trip.
    ///
    /// `validate` is the transaction's full read-set; `watermarks` maps
    /// each server to the length of the read-set prefix it has already
    /// validated for this transaction. Only the suffix past the slowest
    /// contacted member's watermark is shipped (the *delta*), and the
    /// watermarks of the members that replied are advanced on success —
    /// so total shipped validation payload stays linear in the read-set
    /// size. Skipped entries are still validated at prepare time; the
    /// delta only affects how early staleness is detected, never safety.
    ///
    /// Unlike [`DtmClient::remote_read`], the batch round contacts exactly
    /// one minimal quorum and waits for every member: advancing watermarks
    /// for a member that never replied would skip validation it has not
    /// done, and *not* advancing stragglers would pin the delta at the full
    /// read-set, defeating the point.
    ///
    /// Returns `(object, version, value)` in request order.
    pub fn remote_read_batch(
        &mut self,
        txn: TxnId,
        objs: &[ObjectId],
        validate: &[ValidateEntry],
        watermarks: &mut HashMap<NodeId, usize>,
    ) -> Result<Vec<(ObjectId, Version, ObjectVal)>, DtmError> {
        assert!(!objs.is_empty(), "batch read of zero objects");
        let mut locked_attempts = 0usize;
        let mut quorum_attempts = 0usize;
        loop {
            let alive = self.alive_fn();
            let Some(quorum) = self
                .quorums
                .read_quorum(self.seed.wrapping_add(quorum_attempts as u64), &alive)
            else {
                self.stats.quorum_unavailable += 1;
                return Err(DtmError::Unavailable);
            };
            let start = quorum
                .iter()
                .map(|&m| watermarks.get(&Self::server_node(m)).copied().unwrap_or(0))
                .min()
                .unwrap_or(0)
                .min(validate.len());
            let delta = validate[start..].to_vec();
            self.stats.validate_entries_sent += (delta.len() * quorum.len()) as u64;
            let objs_owned = objs.to_vec();
            let sample = self.piggyback_classes.clone();
            let resps = match self.rpc_round(&quorum, quorum.len(), |req| Msg::ReadBatchReq {
                txn,
                req,
                objs: objs_owned.clone(),
                validate: delta.clone(),
                sample: sample.clone(),
            }) {
                Ok(r) => r,
                Err(DtmError::Unavailable) => {
                    quorum_attempts += 1;
                    if quorum_attempts > self.cfg.quorum_retries {
                        self.stats.quorum_unavailable += 1;
                        return Err(DtmError::Unavailable);
                    }
                    continue;
                }
                Err(other) => return Err(other),
            };
            self.stats.remote_reads += 1;
            self.stats.batched_reads += 1;

            let mut invalid: Vec<ObjectId> = Vec::new();
            let mut locked_obj: Option<ObjectId> = None;
            let mut best: Vec<Option<(Version, ObjectVal)>> = vec![None; objs.len()];
            let mut sampled: HashMap<u16, f64> = HashMap::new();
            let mut repliers: Vec<NodeId> = Vec::with_capacity(resps.len());
            // Per responder: (version, locked) in request order, for repair.
            let mut served: Vec<(NodeId, Vec<(Version, bool)>)> = Vec::with_capacity(resps.len());
            for (src, r) in resps {
                if let Msg::ReadBatchResp {
                    reads,
                    invalid: inv,
                    levels,
                    ..
                } = r
                {
                    debug_assert_eq!(reads.len(), objs.len(), "reply not in request shape");
                    repliers.push(src);
                    invalid.extend(inv);
                    for (c, l) in levels {
                        let e = sampled.entry(c).or_insert(0.0);
                        if l > *e {
                            *e = l;
                        }
                    }
                    let mut versions = Vec::with_capacity(objs.len());
                    for (i, read) in reads.into_iter().enumerate().take(objs.len()) {
                        versions.push((read.version, read.locked));
                        if read.locked {
                            locked_obj.get_or_insert(read.obj);
                        } else if best[i].as_ref().is_none_or(|(v, _)| read.version > *v) {
                            best[i] = Some((read.version, read.value));
                        }
                    }
                    served.push((src, versions));
                }
            }
            if !sampled.is_empty() {
                self.piggybacked = sampled;
            }
            if !invalid.is_empty() {
                invalid.sort_unstable();
                invalid.dedup();
                self.stats.read_invalidations += 1;
                return Err(DtmError::Invalidated { objs: invalid });
            }
            if let Some(obj) = locked_obj {
                locked_attempts += 1;
                self.stats.locked_read_retries += 1;
                if locked_attempts > self.cfg.locked_retries {
                    return Err(DtmError::LockedOut { obj });
                }
                let lw = Instant::now();
                std::thread::sleep(self.cfg.locked_backoff);
                if let Some(t) = self.tracer.as_mut() {
                    t.record_plain(SpanKind::LockWait, lw);
                }
                continue;
            }
            // The round validated `validate[start..]` at every replier, and
            // entries before `start` were covered by each replier's own
            // (>= start) watermark: the full prefix is now validated there.
            for node in repliers {
                let w = watermarks.entry(node).or_insert(0);
                *w = (*w).max(validate.len());
            }
            // Read repair, batched per lagging responder: each repaired
            // node gets one RepairWrite carrying exactly the objects it
            // served stale (and unlocked). Bounded and fire-and-forget,
            // like the single-object path.
            if self.cfg.read_repair_max > 0 {
                let mut repaired = 0usize;
                for (node, versions) in &served {
                    if repaired >= self.cfg.read_repair_max {
                        break;
                    }
                    let writes: Vec<(ObjectId, Version, ObjectVal)> = versions
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &(v, locked))| match &best[i] {
                            Some((bv, bval)) if !locked && v < *bv => {
                                Some((objs[i], *bv, bval.clone()))
                            }
                            _ => None,
                        })
                        .collect();
                    if writes.is_empty() {
                        continue;
                    }
                    let req = self.next_req;
                    self.next_req += 1;
                    let msg = Msg::RepairWrite { req, writes };
                    let bytes = msg.wire_bytes();
                    self.endpoint.send_sized(*node, msg, bytes);
                    self.stats.repair_writes_sent += 1;
                    repaired += 1;
                }
            }
            return Ok(objs
                .iter()
                .zip(best)
                .map(|(&o, b)| {
                    let (v, val) = b.expect("quorum is non-empty");
                    (o, v, val)
                })
                .collect());
        }
    }

    /// Commit a transaction with two-phase commit against a write quorum.
    ///
    /// * `validate` — the full read-set (write-set read versions included);
    /// * `writes` — `(object, version-read, new value)`; the committed
    ///   version is `version-read + 1`.
    ///
    /// Read-only transactions (`writes` empty) run a single validation
    /// round against a read quorum — no locks, no phase 2.
    pub fn commit(
        &mut self,
        txn: TxnId,
        validate: &[ValidateEntry],
        writes: &[(ObjectId, Version, ObjectVal)],
    ) -> Result<(), DtmError> {
        let alive = self.alive_fn();
        let quorum = if writes.is_empty() {
            self.quorums.read_quorum(self.seed, &alive)
        } else {
            self.quorums.write_quorum(self.seed, &alive)
        };
        let Some(quorum) = quorum else {
            self.stats.quorum_unavailable += 1;
            return Err(DtmError::Unavailable);
        };

        // Phase 1: prepare.
        self.stats.prepares += 1;
        let validate_owned = validate.to_vec();
        let write_versions: Vec<(ObjectId, Version)> =
            writes.iter().map(|&(o, v, _)| (o, v)).collect();
        let resps = match self.rpc_quorum_retry(&quorum, |req| Msg::PrepareReq {
            txn,
            req,
            validate: validate_owned.clone(),
            writes: write_versions.clone(),
        }) {
            Ok(r) => r,
            Err(e) => {
                // No quorum for prepare (this client may be stuck on a
                // partition's minority side). Members that *did* receive
                // the prepare are holding locks: tell every reachable one
                // to release now instead of waiting out the TTL sweep.
                if !writes.is_empty() {
                    self.abort_best_effort(txn, &quorum);
                }
                return Err(e);
            }
        };
        let mut all_yes = true;
        let mut invalid: Vec<ObjectId> = Vec::new();
        let mut locked: Vec<ObjectId> = Vec::new();
        let mut sync_refused = false;
        let mut wal_refused = false;
        for r in &resps {
            if let Msg::PrepareResp {
                vote,
                invalid: inv,
                locked: lock,
                syncing,
                wal_refused: walr,
                ..
            } = r
            {
                if !vote {
                    all_yes = false;
                }
                if *syncing {
                    sync_refused = true;
                    self.stats.sync_refusals_seen += 1;
                }
                if *walr {
                    wal_refused = true;
                }
                invalid.extend(inv.iter().copied());
                locked.extend(lock.iter().copied());
            }
        }
        let conflict = |mut invalid: Vec<ObjectId>, mut locked: Vec<ObjectId>| {
            invalid.sort_unstable();
            invalid.dedup();
            locked.sort_unstable();
            locked.dedup();
            DtmError::Conflict {
                invalid,
                locked,
                syncing: sync_refused,
                wal_refused,
            }
        };
        if writes.is_empty() {
            // Read-only: validation outcome is the commit outcome.
            return if all_yes {
                self.stats.commits += 1;
                if let Some(h) = &self.history {
                    h.record(CommitRecord {
                        txn,
                        reads: validate.to_vec(),
                        writes: Vec::new(),
                    });
                    h.record_ack(txn);
                }
                Ok(())
            } else {
                self.stats.conflict_aborts += 1;
                Err(conflict(invalid, locked))
            };
        }

        if !all_yes {
            // Phase 2: abort everywhere (also the replicas that voted yes).
            let _ = self.rpc_quorum_retry(&quorum, |req| Msg::AbortReq { txn, req });
            self.stats.conflict_aborts += 1;
            return Err(conflict(invalid, locked));
        }

        // Phase 2: commit. The decision is reached *here* — a yes-vote from
        // the full write quorum — so the history record is appended now:
        // even if every CommitAck is lost, servers that receive the
        // CommitReq will apply it, and the checker must account those
        // writes to a committed transaction.
        let commit_writes: Vec<(ObjectId, Version, ObjectVal)> = writes
            .iter()
            .map(|(o, v, val)| (*o, v + 1, val.clone()))
            .collect();
        if let Some(h) = &self.history {
            h.record(CommitRecord {
                txn,
                reads: validate.to_vec(),
                writes: commit_writes.iter().map(|&(o, v, _)| (o, v)).collect(),
            });
        }
        self.rpc_quorum_retry(&quorum, |req| Msg::CommitReq {
            txn,
            req,
            writes: commit_writes.clone(),
        })?;
        // Only now — with a CommitAck from the full write quorum in hand —
        // is the commit *acknowledged*: under ack-after-durable servers
        // held those acks until the covering WAL records were synced, so
        // everything recorded here must survive any later crash-restart.
        // (The history record above is different: it marks the decision,
        // which servers may apply even when every ack is lost.)
        if let Some(h) = &self.history {
            h.record_ack(txn);
        }
        self.stats.commits += 1;
        Ok(())
    }

    /// Dynamic Module: fetch per-class write contention levels from a read
    /// quorum, taking the maximum across replicas (each replica only counts
    /// the commits it participated in).
    pub fn query_contention(&mut self, classes: &[u16]) -> Result<HashMap<u16, f64>, DtmError> {
        Ok(self.query_contention_full(classes)?.writes)
    }

    /// Like [`DtmClient::query_contention`], but returning both run-time
    /// parameters the paper's Dynamic Module collects: per-class write
    /// levels and per-class abort ratios.
    pub fn query_contention_full(&mut self, classes: &[u16]) -> Result<ContentionSample, DtmError> {
        let alive = self.alive_fn();
        let Some(quorum) = self.quorums.read_quorum(self.seed, &alive) else {
            self.stats.quorum_unavailable += 1;
            return Err(DtmError::Unavailable);
        };
        let classes_owned = classes.to_vec();
        let resps = self.rpc_quorum_retry(&quorum, |req| Msg::ContentionReq {
            req,
            classes: classes_owned.clone(),
        })?;
        let mut out = ContentionSample {
            writes: classes.iter().map(|&c| (c, 0.0)).collect(),
            aborts: classes.iter().map(|&c| (c, 0.0)).collect(),
        };
        let fold = |into: &mut HashMap<u16, f64>, pairs: Vec<(u16, f64)>| {
            for (c, l) in pairs {
                let e = into.entry(c).or_insert(0.0);
                if l > *e {
                    *e = l;
                }
            }
        };
        for r in resps {
            if let Msg::ContentionResp {
                levels,
                abort_levels,
                ..
            } = r
            {
                fold(&mut out.writes, levels);
                fold(&mut out.aborts, abort_levels);
            }
        }
        Ok(out)
    }
}

/// Both run-time parameters the Dynamic Module collects (§V-B): per-class
/// write levels and abort ratios, max-aggregated across the quorum.
#[derive(Debug, Clone, Default)]
pub struct ContentionSample {
    /// Mean writes per written object, per class.
    pub writes: HashMap<u16, f64>,
    /// Mean prepare rejections blamed per object, per class.
    pub aborts: HashMap<u16, f64>,
}
