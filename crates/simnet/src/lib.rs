#![warn(missing_docs)]

//! # acn-simnet — in-process message-passing network substrate
//!
//! The QR-ACN reproduction runs an entire distributed transactional memory
//! (clients + quorum servers) inside one process. This crate provides the
//! message-passing layer that stands in for the paper's 1 Gbps switched
//! network: every logical node owns an inbox, senders address nodes by
//! [`NodeId`], and a pluggable [`LatencyModel`] delays each message so that
//! remote operations keep their paper-relevant cost structure (a remote
//! object fetch is orders of magnitude more expensive than a local
//! computation).
//!
//! Design goals, in order:
//!
//! 1. **Faithful cost model** — per-message latency sampled from a model,
//!    messages delivered in `deliver_at` order (a later-sent message with a
//!    shorter latency can overtake an earlier one, as on a real network).
//! 2. **Fault injection** — nodes can be failed and recovered at run time;
//!    messages to failed nodes are dropped, which is what lets the tree
//!    quorum protocol's fault tolerance be exercised end-to-end.
//! 3. **Determinism where it matters** — with [`LatencyModel::Zero`] and a
//!    single client the delivery order is FIFO, which keeps unit tests
//!    exact; the benchmark harness uses jittered latencies.
//!
//! ```
//! use acn_simnet::{Network, LatencyModel};
//! use std::time::Duration;
//!
//! let net: Network<&'static str> = Network::new(2, LatencyModel::Zero);
//! let a = net.endpoint(acn_simnet::NodeId(0));
//! let b = net.endpoint(acn_simnet::NodeId(1));
//! a.send(acn_simnet::NodeId(1), "ping");
//! let (src, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(src, acn_simnet::NodeId(0));
//! assert_eq!(msg, "ping");
//! ```

mod chaos;
mod envelope;
mod fault;
mod inbox;
mod latency;
mod network;
mod node;
mod stats;

pub use chaos::{
    ChaosDecision, ChaosProfile, ChaosRule, FaultAction, FaultPlan, MsgKind, TimedFault, ANY_KIND,
};
pub use envelope::{Envelope, Payload};
pub use fault::FaultTable;
pub use inbox::RecvError;
pub use latency::LatencyModel;
pub use network::{Endpoint, Network, RecvMeta};
pub use node::NodeId;
pub use stats::{NetStats, NetStatsSnapshot};
