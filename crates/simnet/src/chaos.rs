//! Seeded, deterministic message-level fault injection.
//!
//! A [`FaultPlan`] describes an adversarial schedule in two parts:
//!
//! * **Per-message chaos rules** ([`ChaosRule`]): for messages matching a
//!   (src, dst, kind) filter, drop / duplicate / delay them with fixed
//!   probabilities. The fate of the *n*-th matching message on a link is a
//!   pure hash of `(seed, rule, src, dst, kind, n)` — no global RNG state —
//!   so the same traffic pattern meets the same fates on every run.
//! * **Timed fault events** ([`TimedFault`]): crashes, recoveries, link
//!   failures and quorum-splitting partitions at fixed offsets from the
//!   start of a run, applied by [`crate::Network::run_fault_schedule`].
//!
//! Plans compare with `==`, which is how the chaos suite asserts that one
//! seed always expands to one schedule. [`FaultPlan::generate`] derives a
//! complete plan (rule probabilities from a profile, a randomly placed
//! partition and crash window) from a single `u64` seed.
//!
//! The simnet layer does not know the DTM protocol, so message kinds are an
//! opaque [`MsgKind`] byte supplied by a classifier function installed with
//! [`crate::Network::set_chaos`]. Corruption is deliberately not modelled:
//! the paper's fault model is fail-stop plus an unreliable network, not
//! Byzantine.

use crate::node::NodeId;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Protocol-assigned message classifier value. `MsgKind::MAX` in a rule's
/// filter means "any kind".
pub type MsgKind = u8;

/// Wildcard kind: matches every message.
pub const ANY_KIND: MsgKind = MsgKind::MAX;

/// Per-link chaos probabilities. All independent draws per message: a
/// message can be both duplicated and delayed, but a dropped message is
/// simply gone (drop is checked first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRule {
    /// Only messages from this node match (`None` = any sender).
    pub src: Option<NodeId>,
    /// Only messages to this node match (`None` = any destination).
    pub dst: Option<NodeId>,
    /// Only messages of this kind match ([`ANY_KIND`] = any kind).
    pub kind: MsgKind,
    /// Probability the message is silently dropped.
    pub drop_p: f64,
    /// Probability the message is delivered twice (second copy takes its
    /// own latency sample, so the copies may be reordered).
    pub dup_p: f64,
    /// Probability the message is delayed by `extra_delay` (reordering it
    /// behind later traffic).
    pub delay_p: f64,
    /// The extra delay applied when the delay draw fires.
    pub extra_delay: Duration,
}

impl ChaosRule {
    /// A rule matching every message on every link.
    pub fn all(drop_p: f64, dup_p: f64, delay_p: f64, extra_delay: Duration) -> Self {
        ChaosRule {
            src: None,
            dst: None,
            kind: ANY_KIND,
            drop_p,
            dup_p,
            delay_p,
            extra_delay,
        }
    }

    /// A rule matching one message kind on every link.
    pub fn for_kind(
        kind: MsgKind,
        drop_p: f64,
        dup_p: f64,
        delay_p: f64,
        extra_delay: Duration,
    ) -> Self {
        ChaosRule {
            kind,
            ..Self::all(drop_p, dup_p, delay_p, extra_delay)
        }
    }

    fn matches(&self, src: NodeId, dst: NodeId, kind: MsgKind) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && (self.kind == ANY_KIND || self.kind == kind)
    }
}

/// What the chaos layer decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDecision {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver twice (each copy with its own latency sample).
    Duplicate,
    /// Deliver once, with this much extra latency.
    Delay(Duration),
    /// Deliver twice, the second copy with this much extra latency.
    DuplicateDelayed(Duration),
}

/// A node- or link-level fault applied at a fixed offset into a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail-stop a node (drains its inbox; see [`crate::Network::fail`]).
    Crash(NodeId),
    /// Fail-stop a node **and lose its state**: besides the crash drain,
    /// the node's amnesia epoch advances so its service loop wipes local
    /// state and must catch up from peers after [`FaultAction::Recover`]
    /// (see [`crate::Network::fail_amnesia`]).
    CrashAmnesia(NodeId),
    /// Fail-stop a node **keeping its durable log**: besides the crash
    /// drain, the node's restart epoch advances so its service loop drops
    /// volatile state and replays its log after [`FaultAction::Recover`]
    /// (see [`crate::Network::fail_restart`]).
    CrashRestart(NodeId),
    /// Recover a crashed node (drains again so pre-crash traffic that
    /// raced past the crash drain is not replayed).
    Recover(NodeId),
    /// Fail the directed link `src → dst` (asymmetric: the reverse
    /// direction keeps working unless failed separately).
    FailLink {
        /// Sending side of the dead link.
        src: NodeId,
        /// Receiving side of the dead link.
        dst: NodeId,
    },
    /// Heal the directed link `src → dst`.
    HealLink {
        /// Sending side.
        src: NodeId,
        /// Receiving side.
        dst: NodeId,
    },
    /// Partition the listed groups from each other (both directions of
    /// every cross-group link fail). Nodes absent from every group keep
    /// full connectivity.
    Partition(Vec<Vec<NodeId>>),
    /// Heal every failed link (partitions included).
    HealAllLinks,
}

/// One scheduled fault: `action` fires `at` this offset from run start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFault {
    /// Offset from the start of the schedule.
    pub at: Duration,
    /// The fault to apply.
    pub action: FaultAction,
}

/// Shape parameters for [`FaultPlan::generate`]: how much chaos a generated
/// plan contains. The same profile + seed always yields the same plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Per-message drop probability for the generated catch-all rule.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub dup_p: f64,
    /// Per-message delay probability.
    pub delay_p: f64,
    /// Extra latency applied to delayed messages.
    pub extra_delay: Duration,
    /// Number of quorum-splitting partition windows to schedule.
    pub partitions: usize,
    /// Number of single-server crash windows to schedule.
    pub crashes: usize,
    /// Number of single-server **crash-with-amnesia** windows to schedule:
    /// like a crash window, but the victim loses its state and must run
    /// the layer-above catch-up protocol after recovery.
    pub amnesia_crashes: usize,
    /// Number of single-server **crash-restart** windows to schedule:
    /// the victim's process dies but its durable log survives; after
    /// recovery it replays the log and fetches only the delta from peers.
    pub restart_crashes: usize,
    /// Length of the run the plan is generated for.
    pub horizon: Duration,
    /// Every scheduled fault is healed by `horizon * heal_by` so the tail
    /// of the run can demonstrate progress on a healthy network.
    pub heal_by: f64,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            drop_p: 0.03,
            dup_p: 0.08,
            delay_p: 0.12,
            extra_delay: Duration::from_millis(1),
            partitions: 1,
            crashes: 1,
            amnesia_crashes: 0,
            restart_crashes: 0,
            horizon: Duration::from_millis(400),
            heal_by: 0.45,
        }
    }
}

/// A complete, reproducible adversarial schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-message fate hash.
    pub seed: u64,
    /// Per-message chaos rules; the first matching rule decides a
    /// message's fate.
    pub rules: Vec<ChaosRule>,
    /// Timed node/link faults, sorted by offset.
    pub events: Vec<TimedFault>,
}

impl FaultPlan {
    /// A plan with per-message rules only (no timed faults).
    pub fn with_rules(seed: u64, rules: Vec<ChaosRule>) -> Self {
        FaultPlan {
            seed,
            rules,
            events: Vec::new(),
        }
    }

    /// Expand `seed` into a full plan for a cluster of `servers` servers
    /// and `clients` clients (servers occupy node ids `0..servers`, clients
    /// `servers..servers+clients`, matching the DTM cluster layout).
    ///
    /// The generated plan has one catch-all message rule with the profile's
    /// probabilities, plus `partitions` minority-partition windows (a
    /// random minority of servers, each client assigned a random side),
    /// `crashes` single-server crash windows, `amnesia_crashes`
    /// crash-with-amnesia windows (the victim's state is lost and must be
    /// re-synced from peers after recovery), and `restart_crashes`
    /// crash-restart windows (the victim's durable log survives; it
    /// replays and fetches only the delta). All faults heal by
    /// `horizon * heal_by`.
    pub fn generate(seed: u64, servers: usize, clients: usize, profile: &ChaosProfile) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5);
        let rules = vec![ChaosRule::all(
            profile.drop_p,
            profile.dup_p,
            profile.delay_p,
            profile.extra_delay,
        )];

        let heal_deadline_us =
            ((profile.horizon.as_micros() as f64 * profile.heal_by) as u64).max(4);
        let mut events = Vec::new();

        for _ in 0..profile.partitions {
            if servers < 3 {
                break; // no minority to split off
            }
            let start = rng.gen_range(0..heal_deadline_us / 2);
            let end = rng.gen_range(start + heal_deadline_us / 4..=heal_deadline_us);
            // A strict minority of servers goes to the small side, so the
            // majority side can still form tree quorums.
            let minority_size = rng.gen_range(1..=(servers - 1) / 2);
            let mut ids: Vec<usize> = (0..servers).collect();
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..=i));
            }
            let mut small: Vec<NodeId> = ids[..minority_size]
                .iter()
                .map(|&i| NodeId(i as u32))
                .collect();
            let mut big: Vec<NodeId> = ids[minority_size..]
                .iter()
                .map(|&i| NodeId(i as u32))
                .collect();
            for c in 0..clients {
                let id = NodeId((servers + c) as u32);
                if rng.gen_bool(0.5) {
                    small.push(id);
                } else {
                    big.push(id);
                }
            }
            events.push(TimedFault {
                at: Duration::from_micros(start),
                action: FaultAction::Partition(vec![small, big]),
            });
            events.push(TimedFault {
                at: Duration::from_micros(end),
                action: FaultAction::HealAllLinks,
            });
        }

        for _ in 0..profile.crashes {
            if servers == 0 {
                break;
            }
            let victim = NodeId(rng.gen_range(0..servers) as u32);
            let start = rng.gen_range(0..heal_deadline_us / 2);
            let end = rng.gen_range(start + heal_deadline_us / 4..=heal_deadline_us);
            events.push(TimedFault {
                at: Duration::from_micros(start),
                action: FaultAction::Crash(victim),
            });
            events.push(TimedFault {
                at: Duration::from_micros(end),
                action: FaultAction::Recover(victim),
            });
        }

        for _ in 0..profile.amnesia_crashes {
            if servers == 0 {
                break;
            }
            let victim = NodeId(rng.gen_range(0..servers) as u32);
            let start = rng.gen_range(0..heal_deadline_us / 2);
            let end = rng.gen_range(start + heal_deadline_us / 4..=heal_deadline_us);
            events.push(TimedFault {
                at: Duration::from_micros(start),
                action: FaultAction::CrashAmnesia(victim),
            });
            events.push(TimedFault {
                at: Duration::from_micros(end),
                action: FaultAction::Recover(victim),
            });
        }

        for _ in 0..profile.restart_crashes {
            if servers == 0 {
                break;
            }
            let victim = NodeId(rng.gen_range(0..servers) as u32);
            let start = rng.gen_range(0..heal_deadline_us / 2);
            let end = rng.gen_range(start + heal_deadline_us / 4..=heal_deadline_us);
            events.push(TimedFault {
                at: Duration::from_micros(start),
                action: FaultAction::CrashRestart(victim),
            });
            events.push(TimedFault {
                at: Duration::from_micros(end),
                action: FaultAction::Recover(victim),
            });
        }

        events.sort_by_key(|e| e.at);
        FaultPlan {
            seed,
            rules,
            events,
        }
    }

    /// Decide the fate of the `n`-th message matching some rule on the
    /// link `(src, dst, kind)`. Pure function of the plan and arguments.
    pub fn decide(&self, src: NodeId, dst: NodeId, kind: MsgKind, n: u64) -> ChaosDecision {
        for (ri, rule) in self.rules.iter().enumerate() {
            if !rule.matches(src, dst, kind) {
                continue;
            }
            let base = mix64(
                self.seed
                    ^ (ri as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (u64::from(src.0) << 40)
                    ^ (u64::from(dst.0) << 20)
                    ^ u64::from(kind),
            )
            .wrapping_add(n.wrapping_mul(0xD1B5_4A32_D192_ED03));
            if unit(mix64(base ^ 0x01)) < rule.drop_p {
                return ChaosDecision::Drop;
            }
            let dup = unit(mix64(base ^ 0x02)) < rule.dup_p;
            let delay = unit(mix64(base ^ 0x03)) < rule.delay_p;
            return match (dup, delay) {
                (true, true) => ChaosDecision::DuplicateDelayed(rule.extra_delay),
                (true, false) => ChaosDecision::Duplicate,
                (false, true) => ChaosDecision::Delay(rule.extra_delay),
                (false, false) => ChaosDecision::Deliver,
            };
        }
        ChaosDecision::Deliver
    }

    /// Offset of the last timed fault (zero if the plan has none).
    pub fn last_event_at(&self) -> Duration {
        self.events
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let p = ChaosProfile::default();
        let a = FaultPlan::generate(42, 7, 3, &p);
        let b = FaultPlan::generate(42, 7, 3, &p);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 7, 3, &p);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::with_rules(
            9,
            vec![ChaosRule::all(0.2, 0.2, 0.2, Duration::from_millis(1))],
        );
        for n in 0..200 {
            assert_eq!(
                plan.decide(NodeId(0), NodeId(1), 3, n),
                plan.decide(NodeId(0), NodeId(1), 3, n)
            );
        }
    }

    #[test]
    fn decision_rates_track_probabilities() {
        let plan = FaultPlan::with_rules(7, vec![ChaosRule::all(0.3, 0.0, 0.0, Duration::ZERO)]);
        let drops = (0..10_000)
            .filter(|&n| plan.decide(NodeId(0), NodeId(1), 0, n) == ChaosDecision::Drop)
            .count();
        assert!(
            (2500..3500).contains(&drops),
            "drop rate off: {drops}/10000"
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::with_rules(
            1,
            vec![
                ChaosRule::for_kind(4, 1.0, 0.0, 0.0, Duration::ZERO),
                ChaosRule::all(0.0, 0.0, 0.0, Duration::ZERO),
            ],
        );
        assert_eq!(plan.decide(NodeId(0), NodeId(1), 4, 0), ChaosDecision::Drop);
        assert_eq!(
            plan.decide(NodeId(0), NodeId(1), 5, 0),
            ChaosDecision::Deliver
        );
    }

    #[test]
    fn generated_faults_heal_within_deadline() {
        let prof = ChaosProfile {
            partitions: 2,
            crashes: 2,
            ..Default::default()
        };
        let plan = FaultPlan::generate(11, 7, 4, &prof);
        let deadline =
            Duration::from_micros((prof.horizon.as_micros() as f64 * prof.heal_by) as u64);
        assert!(!plan.events.is_empty());
        assert!(
            plan.last_event_at() <= deadline,
            "faults must heal by the deadline"
        );
        // Events are sorted.
        for w in plan.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn amnesia_windows_pair_crash_with_recover() {
        let prof = ChaosProfile {
            partitions: 0,
            crashes: 0,
            amnesia_crashes: 2,
            ..Default::default()
        };
        for seed in 0..10 {
            let plan = FaultPlan::generate(seed, 7, 3, &prof);
            let crashes: Vec<_> = plan
                .events
                .iter()
                .filter_map(|e| match &e.action {
                    FaultAction::CrashAmnesia(n) => Some((e.at, *n)),
                    _ => None,
                })
                .collect();
            assert_eq!(crashes.len(), 2, "seed {seed}: two amnesia windows");
            for (at, victim) in crashes {
                assert!(
                    plan.events.iter().any(|e| e.at >= at
                        && matches!(&e.action, FaultAction::Recover(n) if *n == victim)),
                    "seed {seed}: amnesia victim {victim} must recover later"
                );
                assert!(victim.0 < 7, "victims are servers only");
            }
        }
        // Deterministic like every other window type.
        assert_eq!(
            FaultPlan::generate(5, 7, 3, &prof),
            FaultPlan::generate(5, 7, 3, &prof)
        );
    }

    #[test]
    fn restart_windows_pair_crash_with_recover() {
        let prof = ChaosProfile {
            partitions: 0,
            crashes: 0,
            restart_crashes: 2,
            ..Default::default()
        };
        for seed in 0..10 {
            let plan = FaultPlan::generate(seed, 7, 3, &prof);
            let crashes: Vec<_> = plan
                .events
                .iter()
                .filter_map(|e| match &e.action {
                    FaultAction::CrashRestart(n) => Some((e.at, *n)),
                    _ => None,
                })
                .collect();
            assert_eq!(crashes.len(), 2, "seed {seed}: two restart windows");
            for (at, victim) in crashes {
                assert!(
                    plan.events.iter().any(|e| e.at >= at
                        && matches!(&e.action, FaultAction::Recover(n) if *n == victim)),
                    "seed {seed}: restart victim {victim} must recover later"
                );
                assert!(victim.0 < 7, "victims are servers only");
            }
            assert!(
                !plan
                    .events
                    .iter()
                    .any(|e| matches!(&e.action, FaultAction::CrashAmnesia(_))),
                "seed {seed}: a restart profile schedules no amnesia"
            );
        }
        // Deterministic like every other window type.
        assert_eq!(
            FaultPlan::generate(5, 7, 3, &prof),
            FaultPlan::generate(5, 7, 3, &prof)
        );
    }

    #[test]
    fn partition_minority_is_strict() {
        let prof = ChaosProfile {
            partitions: 3,
            crashes: 0,
            ..Default::default()
        };
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, 7, 3, &prof);
            for ev in &plan.events {
                if let FaultAction::Partition(groups) = &ev.action {
                    let server_count = |g: &Vec<NodeId>| g.iter().filter(|n| n.0 < 7).count();
                    let small = groups.iter().map(server_count).min().unwrap();
                    assert!(
                        (1..=3).contains(&small),
                        "minority of 7 servers must be 1..=3, got {small}"
                    );
                }
            }
        }
    }
}
