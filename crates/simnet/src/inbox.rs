//! Per-node inbox: a delay queue ordered by delivery instant.

use crate::envelope::Envelope;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Why a receive returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message became deliverable before the deadline.
    Timeout,
    /// The network was shut down (all endpoints dropped / closed).
    Closed,
}

struct State<M> {
    heap: BinaryHeap<Reverse<Envelope<M>>>,
    closed: bool,
}

/// A node's inbox. Messages become visible only once their `deliver_at`
/// instant has passed, which is how network latency is realised: the
/// receiving thread sleeps on a condvar until the earliest message matures.
pub(crate) struct Inbox<M> {
    state: Mutex<State<M>>,
    cond: Condvar,
}

impl<M> Inbox<M> {
    pub(crate) fn new() -> Self {
        Inbox {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueue a message. Returns `false` when the inbox is closed (the
    /// message vanishes, like traffic to a dead host).
    pub(crate) fn push(&self, env: Envelope<M>) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        st.heap.push(Reverse(env));
        // Wake the receiver: even if the new message is not yet mature it
        // may be earlier than what the receiver is currently waiting for.
        self.cond.notify_one();
        true
    }

    pub(crate) fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.heap.clear();
        self.cond.notify_all();
    }

    /// Drop all queued messages without closing (used by fault injection so
    /// a "crashed" node loses its in-flight traffic).
    pub(crate) fn drain(&self) -> usize {
        let mut st = self.state.lock();
        let n = st.heap.len();
        st.heap.clear();
        n
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().heap.len()
    }

    /// Block until a message matures or `deadline` passes.
    pub(crate) fn recv_deadline(&self, deadline: Instant) -> Result<Envelope<M>, RecvError> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(RecvError::Closed);
            }
            let now = Instant::now();
            // Earliest message, if any.
            let next_at = st.heap.peek().map(|Reverse(e)| e.deliver_at);
            match next_at {
                Some(at) if at <= now => {
                    let Reverse(env) = st.heap.pop().expect("peeked");
                    return Ok(env);
                }
                Some(at) => {
                    let wake = at.min(deadline);
                    if wake <= now {
                        return Err(RecvError::Timeout);
                    }
                    self.cond.wait_until(&mut st, wake);
                }
                None => {
                    if deadline <= now {
                        return Err(RecvError::Timeout);
                    }
                    self.cond.wait_until(&mut st, deadline);
                }
            }
            if Instant::now() >= deadline
                && !matches!(st.heap.peek(), Some(Reverse(e)) if e.deliver_at <= Instant::now())
            {
                return Err(RecvError::Timeout);
            }
        }
    }

    /// Non-blocking receive of a mature message.
    pub(crate) fn try_recv(&self) -> Option<Envelope<M>> {
        let mut st = self.state.lock();
        let now = Instant::now();
        match st.heap.peek() {
            Some(Reverse(e)) if e.deliver_at <= now => {
                let Reverse(env) = st.heap.pop().expect("peeked");
                Some(env)
            }
            _ => None,
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        self.recv_deadline(Instant::now() + timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Payload;
    use crate::node::NodeId;

    fn env(payload: u32, delay: Duration, seq: u64) -> Envelope<u32> {
        let now = Instant::now();
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: now,
            deliver_at: now + delay,
            seq,
            payload: Payload::Owned(payload),
        }
    }

    fn val(p: Payload<u32>) -> u32 {
        p.into_inner()
    }

    #[test]
    fn immediate_message_is_received() {
        let inbox = Inbox::new();
        inbox.push(env(42, Duration::ZERO, 0));
        let got = inbox.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(val(got.payload), 42);
    }

    #[test]
    fn empty_inbox_times_out() {
        let inbox: Inbox<u32> = Inbox::new();
        let err = inbox.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn delayed_message_waits_for_maturity() {
        let inbox = Inbox::new();
        let delay = Duration::from_millis(20);
        inbox.push(env(1, delay, 0));
        assert!(inbox.try_recv().is_none(), "message must not be early");
        let start = Instant::now();
        let got = inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(val(got.payload), 1);
        assert!(
            start.elapsed() >= delay - Duration::from_millis(1),
            "delivered after only {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn shorter_latency_overtakes() {
        let inbox = Inbox::new();
        inbox.push(env(1, Duration::from_millis(50), 0));
        inbox.push(env(2, Duration::from_millis(5), 1));
        let first = inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(val(first.payload), 2, "low-latency message should overtake");
        let second = inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(val(second.payload), 1);
    }

    #[test]
    fn equal_instants_delivered_in_send_order() {
        let inbox = Inbox::new();
        let at = Instant::now();
        for seq in 0..10u64 {
            inbox.push(Envelope {
                src: NodeId(0),
                dst: NodeId(1),
                sent_at: at,
                deliver_at: at,
                seq,
                payload: Payload::Owned(seq as u32),
            });
        }
        for expect in 0..10u32 {
            let got = inbox.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(val(got.payload), expect);
        }
    }

    #[test]
    fn close_unblocks_receiver() {
        let inbox: std::sync::Arc<Inbox<u32>> = std::sync::Arc::new(Inbox::new());
        let i2 = inbox.clone();
        let h = std::thread::spawn(move || i2.recv_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        inbox.close();
        assert_eq!(h.join().unwrap().unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn push_after_close_is_dropped() {
        let inbox = Inbox::new();
        inbox.close();
        inbox.push(env(1, Duration::ZERO, 0));
        assert_eq!(inbox.len(), 0);
    }

    #[test]
    fn drain_discards_pending() {
        let inbox = Inbox::new();
        inbox.push(env(1, Duration::ZERO, 0));
        inbox.push(env(2, Duration::ZERO, 1));
        assert_eq!(inbox.drain(), 2);
        assert!(inbox.try_recv().is_none());
    }
}
