//! Node failure injection.

use crate::node::NodeId;
use parking_lot::RwLock;
use std::collections::HashSet;

/// Shared record of which nodes are currently failed.
///
/// A failed node neither receives new messages (they are dropped at the
/// sender, as on a real network where the host is unreachable) nor should it
/// keep servicing requests — server loops consult [`FaultTable::is_failed`]
/// between messages. Recovery makes the node reachable again; the DTM layer
/// is quorum-replicated, so a recovered server simply resumes with whatever
/// (possibly stale) state it holds and the version numbers reconcile reads.
#[derive(Default)]
pub struct FaultTable {
    failed: RwLock<HashSet<NodeId>>,
}

impl FaultTable {
    /// An empty table (all nodes alive).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `node` as failed. Returns `true` if it was previously alive.
    pub fn fail(&self, node: NodeId) -> bool {
        self.failed.write().insert(node)
    }

    /// Mark `node` as recovered. Returns `true` if it was previously failed.
    pub fn recover(&self, node: NodeId) -> bool {
        self.failed.write().remove(&node)
    }

    /// Is `node` currently failed?
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.read().contains(&node)
    }

    /// Number of currently failed nodes.
    pub fn failed_count(&self) -> usize {
        self.failed.read().len()
    }

    /// Snapshot of the failed set, for quorum construction.
    pub fn failed_set(&self) -> HashSet<NodeId> {
        self.failed.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_recover_round_trip() {
        let t = FaultTable::new();
        assert!(!t.is_failed(NodeId(3)));
        assert!(t.fail(NodeId(3)));
        assert!(t.is_failed(NodeId(3)));
        assert!(!t.fail(NodeId(3)), "double-fail reports already failed");
        assert_eq!(t.failed_count(), 1);
        assert!(t.recover(NodeId(3)));
        assert!(!t.is_failed(NodeId(3)));
        assert!(!t.recover(NodeId(3)), "double-recover reports not failed");
    }

    #[test]
    fn snapshot_is_independent() {
        let t = FaultTable::new();
        t.fail(NodeId(1));
        let snap = t.failed_set();
        t.fail(NodeId(2));
        assert!(snap.contains(&NodeId(1)));
        assert!(!snap.contains(&NodeId(2)));
    }
}
