//! Node and link failure injection.

use crate::node::NodeId;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};

/// Shared record of which nodes and directed links are currently failed.
///
/// A failed node neither receives new messages (they are dropped at the
/// sender, as on a real network where the host is unreachable) nor should it
/// keep servicing requests — server loops consult [`FaultTable::is_failed`]
/// between messages. Recovery makes the node reachable again. Two crash
/// flavours exist:
///
/// * **crash-resume** ([`FaultTable::fail`]): the node comes back with
///   whatever (possibly stale) state it held; version numbers reconcile
///   reads, so the DTM layer needs no extra machinery.
/// * **crash-with-amnesia** ([`FaultTable::bump_amnesia`], applied together
///   with `fail` by `Network::fail_amnesia`): the node's durable state is
///   presumed lost. The table only records a per-node *amnesia epoch*;
///   the node's own service loop polls [`FaultTable::amnesia_epoch`] and
///   wipes its state when the epoch moves, then runs whatever catch-up
///   protocol the layer above defines before serving again.
/// * **crash-restart** ([`FaultTable::bump_restart`], applied together
///   with `fail` by `Network::fail_restart`): the process died but its
///   durable log survived. The node's service loop polls
///   [`FaultTable::restart_epoch`], drops volatile state, and replays its
///   log before serving again — the layer above decides what "replay"
///   means.
///
/// Link faults are *directed*: failing `a → b` silently drops messages from
/// `a` to `b` while `b → a` keeps working, which models asymmetric routing
/// failures. [`FaultTable::partition`] fails both directions of every
/// cross-group link, which is how quorum-splitting network partitions are
/// injected. Both sides keep running — unlike a crash, nothing is drained —
/// so partitioned nodes can still time out, retry, and release state.
#[derive(Default)]
pub struct FaultTable {
    failed: RwLock<HashSet<NodeId>>,
    links: RwLock<HashSet<(NodeId, NodeId)>>,
    amnesia: RwLock<HashMap<NodeId, u64>>,
    restarts: RwLock<HashMap<NodeId, u64>>,
}

impl FaultTable {
    /// An empty table (all nodes alive).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `node` as failed. Returns `true` if it was previously alive.
    pub fn fail(&self, node: NodeId) -> bool {
        self.failed.write().insert(node)
    }

    /// Mark `node` as recovered. Returns `true` if it was previously failed.
    pub fn recover(&self, node: NodeId) -> bool {
        self.failed.write().remove(&node)
    }

    /// Is `node` currently failed?
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.read().contains(&node)
    }

    /// Number of currently failed nodes.
    pub fn failed_count(&self) -> usize {
        self.failed.read().len()
    }

    /// Snapshot of the failed set, for quorum construction.
    pub fn failed_set(&self) -> HashSet<NodeId> {
        self.failed.read().clone()
    }

    /// Advance `node`'s amnesia epoch, marking its state as lost. The
    /// node's service loop detects the change via
    /// [`FaultTable::amnesia_epoch`] and wipes itself. Returns the new
    /// epoch (first amnesia crash is epoch 1).
    pub fn bump_amnesia(&self, node: NodeId) -> u64 {
        let mut map = self.amnesia.write();
        let e = map.entry(node).or_insert(0);
        *e += 1;
        *e
    }

    /// `node`'s current amnesia epoch (0 = never amnesia-crashed).
    pub fn amnesia_epoch(&self, node: NodeId) -> u64 {
        self.amnesia.read().get(&node).copied().unwrap_or(0)
    }

    /// Advance `node`'s crash-restart epoch: the process died with its
    /// durable log intact. The node's service loop detects the change via
    /// [`FaultTable::restart_epoch`] and replays. Returns the new epoch
    /// (first restart is epoch 1).
    pub fn bump_restart(&self, node: NodeId) -> u64 {
        let mut map = self.restarts.write();
        let e = map.entry(node).or_insert(0);
        *e += 1;
        *e
    }

    /// `node`'s current crash-restart epoch (0 = never restart-crashed).
    pub fn restart_epoch(&self, node: NodeId) -> u64 {
        self.restarts.read().get(&node).copied().unwrap_or(0)
    }

    /// Fail the directed link `src → dst`. Returns `true` if it was
    /// previously healthy.
    pub fn fail_link(&self, src: NodeId, dst: NodeId) -> bool {
        self.links.write().insert((src, dst))
    }

    /// Heal the directed link `src → dst`. Returns `true` if it was
    /// previously failed.
    pub fn heal_link(&self, src: NodeId, dst: NodeId) -> bool {
        self.links.write().remove(&(src, dst))
    }

    /// Is the directed link `src → dst` currently failed?
    pub fn is_link_failed(&self, src: NodeId, dst: NodeId) -> bool {
        let links = self.links.read();
        !links.is_empty() && links.contains(&(src, dst))
    }

    /// Number of currently failed directed links.
    pub fn failed_link_count(&self) -> usize {
        self.links.read().len()
    }

    /// Partition the listed groups from each other: both directions of
    /// every cross-group link fail. Nodes absent from every group are not
    /// touched and keep full connectivity to everyone.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        let mut links = self.links.write();
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in ga {
                    for &b in gb {
                        links.insert((a, b));
                        links.insert((b, a));
                    }
                }
            }
        }
    }

    /// Heal every failed link (partitions included). Node faults are
    /// unaffected.
    pub fn heal_all_links(&self) {
        self.links.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_recover_round_trip() {
        let t = FaultTable::new();
        assert!(!t.is_failed(NodeId(3)));
        assert!(t.fail(NodeId(3)));
        assert!(t.is_failed(NodeId(3)));
        assert!(!t.fail(NodeId(3)), "double-fail reports already failed");
        assert_eq!(t.failed_count(), 1);
        assert!(t.recover(NodeId(3)));
        assert!(!t.is_failed(NodeId(3)));
        assert!(!t.recover(NodeId(3)), "double-recover reports not failed");
    }

    #[test]
    fn amnesia_epoch_counts_up_per_node() {
        let t = FaultTable::new();
        assert_eq!(t.amnesia_epoch(NodeId(2)), 0, "never crashed");
        assert_eq!(t.bump_amnesia(NodeId(2)), 1);
        assert_eq!(t.amnesia_epoch(NodeId(2)), 1);
        assert_eq!(t.bump_amnesia(NodeId(2)), 2);
        assert_eq!(t.amnesia_epoch(NodeId(2)), 2);
        assert_eq!(t.amnesia_epoch(NodeId(3)), 0, "epochs are per-node");
        assert_eq!(
            t.restart_epoch(NodeId(2)),
            0,
            "amnesia and restart epochs are independent ledgers"
        );
        assert_eq!(t.bump_restart(NodeId(2)), 1);
        assert_eq!(t.restart_epoch(NodeId(2)), 1);
        assert_eq!(t.amnesia_epoch(NodeId(2)), 2, "restart leaves amnesia be");
        assert!(
            !t.is_failed(NodeId(2)),
            "the epoch alone does not fail the node; Network::fail_amnesia \
             combines both"
        );
    }

    #[test]
    fn snapshot_is_independent() {
        let t = FaultTable::new();
        t.fail(NodeId(1));
        let snap = t.failed_set();
        t.fail(NodeId(2));
        assert!(snap.contains(&NodeId(1)));
        assert!(!snap.contains(&NodeId(2)));
    }

    #[test]
    fn link_faults_are_directed() {
        let t = FaultTable::new();
        assert!(t.fail_link(NodeId(0), NodeId(1)));
        assert!(t.is_link_failed(NodeId(0), NodeId(1)));
        assert!(
            !t.is_link_failed(NodeId(1), NodeId(0)),
            "reverse direction stays up"
        );
        assert!(!t.is_failed(NodeId(0)), "link faults are not node faults");
        assert!(t.heal_link(NodeId(0), NodeId(1)));
        assert!(!t.is_link_failed(NodeId(0), NodeId(1)));
        assert!(
            !t.heal_link(NodeId(0), NodeId(1)),
            "double-heal reports not failed"
        );
    }

    #[test]
    fn partition_fails_cross_group_links_both_ways() {
        let t = FaultTable::new();
        t.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        for &a in &[NodeId(0), NodeId(1)] {
            assert!(t.is_link_failed(a, NodeId(2)));
            assert!(t.is_link_failed(NodeId(2), a));
        }
        assert!(
            !t.is_link_failed(NodeId(0), NodeId(1)),
            "intra-group links stay up"
        );
        // Node 3 is in no group: untouched.
        assert!(!t.is_link_failed(NodeId(3), NodeId(2)));
        assert_eq!(t.failed_link_count(), 4);
        t.heal_all_links();
        assert_eq!(t.failed_link_count(), 0);
        assert!(!t.is_link_failed(NodeId(0), NodeId(2)));
    }
}
