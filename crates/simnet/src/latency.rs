//! Per-message latency models.

use rand::Rng;
use std::time::Duration;

/// How long a message takes to cross the network.
///
/// The paper's test-bed is a 1 Gbps switched LAN where a remote object fetch
/// costs a sub-millisecond round trip that nonetheless dominates transaction
/// execution time. We reproduce that cost structure at laptop scale:
/// benchmarks typically use `Uniform` with a few tens to hundreds of
/// microseconds of one-way latency, and the experiment time windows are
/// scaled down proportionally (paper 10 s windows → 100–500 ms here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Instant delivery. Used by unit tests that need determinism.
    Zero,
    /// Fixed one-way latency for every message.
    Constant(Duration),
    /// One-way latency sampled uniformly from `[min, max]` per message.
    Uniform {
        /// Minimum one-way latency.
        min: Duration,
        /// Maximum one-way latency.
        max: Duration,
    },
}

impl LatencyModel {
    /// A LAN-like default: 50–150 µs one-way, jittered per message.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: Duration::from_micros(50),
            max: Duration::from_micros(150),
        }
    }

    /// Sample the one-way latency for a single message.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    return min;
                }
                let span = (max - min).as_nanos() as u64;
                min + Duration::from_nanos(rng.gen_range(0..=span))
            }
        }
    }

    /// Upper bound of the model, used to size RPC timeouts.
    pub fn max_latency(&self) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { max, .. } => max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_samples_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), Duration::ZERO);
        assert_eq!(LatencyModel::Zero.max_latency(), Duration::ZERO);
    }

    #[test]
    fn constant_samples_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let d = Duration::from_micros(75);
        assert_eq!(LatencyModel::Constant(d).sample(&mut rng), d);
        assert_eq!(LatencyModel::Constant(d).max_latency(), d);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let min = Duration::from_micros(10);
        let max = Duration::from_micros(90);
        let m = LatencyModel::Uniform { min, max };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s >= min && s <= max, "sample {s:?} out of range");
        }
        assert_eq!(m.max_latency(), max);
    }

    #[test]
    fn uniform_degenerate_range_returns_min() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let d = Duration::from_micros(30);
        let m = LatencyModel::Uniform { min: d, max: d };
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn uniform_covers_span() {
        // With 1000 samples over a 100 µs span we should see both halves.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = LatencyModel::Uniform {
            min: Duration::ZERO,
            max: Duration::from_micros(100),
        };
        let mid = Duration::from_micros(50);
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..1000 {
            if m.sample(&mut rng) < mid {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 300 && high > 300, "low={low} high={high}");
    }

    #[test]
    fn lan_preset_is_jittered_lanlike() {
        match LatencyModel::lan() {
            LatencyModel::Uniform { min, max } => {
                assert!(min < max);
                assert!(max <= Duration::from_millis(1));
            }
            other => panic!("unexpected preset {other:?}"),
        }
    }
}
