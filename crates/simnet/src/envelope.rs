//! In-flight message representation.

use crate::node::NodeId;
use std::cmp::Ordering;
use std::time::Instant;

/// A message in flight: payload plus routing and timing metadata.
///
/// Envelopes are ordered by delivery time (earliest first) with the send
/// sequence number as a tie-breaker so that two messages with identical
/// delivery instants are received in send order — this keeps zero-latency
/// test runs perfectly FIFO.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Earliest instant at which the destination may observe the message.
    pub deliver_at: Instant,
    /// Global send sequence number (tie-breaker for equal `deliver_at`).
    pub seq: u64,
    /// The payload.
    pub payload: M,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Earliest delivery first; BinaryHeap is a max-heap so the inbox
        // wraps envelopes in `Reverse`.
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env(at: Instant, seq: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            deliver_at: at,
            seq,
            payload: 0,
        }
    }

    #[test]
    fn orders_by_delivery_time() {
        let now = Instant::now();
        let early = env(now, 5);
        let late = env(now + Duration::from_micros(10), 1);
        assert!(early < late, "earlier delivery must sort first");
    }

    #[test]
    fn ties_break_by_sequence() {
        let now = Instant::now();
        let first = env(now, 1);
        let second = env(now, 2);
        assert!(first < second);
        assert_eq!(first, env(now, 1));
    }
}
