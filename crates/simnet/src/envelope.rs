//! In-flight message representation.

use crate::node::NodeId;
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// An in-flight payload: either owned by its single envelope, or shared
/// across the envelopes of one broadcast.
///
/// A quorum round sends the *same* request to every member. Cloning a
/// message with a large validation vector once per member is pure overhead
/// in an in-process simulator, so [`crate::Endpoint::broadcast`] allocates
/// the payload once and every member's envelope holds an `Arc` to it. Byte
/// accounting still charges each member individually (see
/// [`crate::NetStatsSnapshot`]): sharing is a simulator optimisation, not a
/// change to the modelled wire cost.
#[derive(Debug)]
pub enum Payload<M> {
    /// A point-to-point payload, owned by this envelope alone.
    Owned(M),
    /// One broadcast's payload, shared by all member envelopes.
    Shared(Arc<M>),
}

impl<M: Clone> Payload<M> {
    /// Extract the message. The last receiver of a broadcast takes the
    /// allocation without copying; earlier receivers clone.
    pub fn into_inner(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl<M> Payload<M> {
    /// Borrow the message (e.g. to classify it for fault injection).
    pub fn message(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

impl<M: Clone> Clone for Payload<M> {
    /// Cloning a payload is how chaos injection duplicates a message: the
    /// copy of a shared broadcast payload stays shared (another `Arc`
    /// handle), an owned payload is cloned outright.
    fn clone(&self) -> Self {
        match self {
            Payload::Owned(m) => Payload::Owned(m.clone()),
            Payload::Shared(a) => Payload::Shared(Arc::clone(a)),
        }
    }
}

/// A message in flight: payload plus routing and timing metadata.
///
/// Envelopes are ordered by delivery time (earliest first) with the send
/// sequence number as a tie-breaker so that two messages with identical
/// delivery instants are received in send order — this keeps zero-latency
/// test runs perfectly FIFO.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Instant the sender handed the message to the network (span tracing
    /// splits a round into wire time vs. inbox dwell with this).
    pub sent_at: Instant,
    /// Earliest instant at which the destination may observe the message.
    pub deliver_at: Instant,
    /// Global send sequence number (tie-breaker for equal `deliver_at`).
    pub seq: u64,
    /// The payload.
    pub payload: Payload<M>,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Earliest delivery first; BinaryHeap is a max-heap so the inbox
        // wraps envelopes in `Reverse`.
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env(at: Instant, seq: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: at,
            deliver_at: at,
            seq,
            payload: Payload::Owned(0),
        }
    }

    #[test]
    fn orders_by_delivery_time() {
        let now = Instant::now();
        let early = env(now, 5);
        let late = env(now + Duration::from_micros(10), 1);
        assert!(early < late, "earlier delivery must sort first");
    }

    #[test]
    fn ties_break_by_sequence() {
        let now = Instant::now();
        let first = env(now, 1);
        let second = env(now, 2);
        assert!(first < second);
        assert_eq!(first, env(now, 1));
    }

    #[test]
    fn shared_payload_unwraps_without_copy_for_last_holder() {
        let a = Arc::new(vec![1u8, 2, 3]);
        let p1: Payload<Vec<u8>> = Payload::Shared(Arc::clone(&a));
        let p2: Payload<Vec<u8>> = Payload::Shared(a);
        assert_eq!(p1.into_inner(), vec![1, 2, 3]); // clones (refcount 2)
        assert_eq!(p2.into_inner(), vec![1, 2, 3]); // takes (refcount 1)
    }
}
