//! The network object and per-node endpoints.

use crate::chaos::{ChaosDecision, FaultAction, FaultPlan, MsgKind, TimedFault};
use crate::envelope::{Envelope, Payload};
use crate::fault::FaultTable;
use crate::inbox::{Inbox, RecvError};
use crate::latency::LatencyModel;
use crate::node::NodeId;
use crate::stats::NetStats;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Installed chaos state: the plan plus a protocol-supplied classifier and
/// the per-(src, dst, kind) message counters that feed the plan's
/// deterministic fate hash.
struct ChaosRuntime<M> {
    plan: FaultPlan,
    classify: Box<dyn Fn(&M) -> MsgKind + Send + Sync>,
    counters: Mutex<HashMap<(NodeId, NodeId, MsgKind), u64>>,
}

impl<M> ChaosRuntime<M> {
    /// Sequence number of the next message on this (src, dst, kind) link.
    fn next_seq(&self, src: NodeId, dst: NodeId, kind: MsgKind) -> u64 {
        let mut counters = self.counters.lock();
        let n = counters.entry((src, dst, kind)).or_insert(0);
        let cur = *n;
        *n += 1;
        cur
    }
}

struct Shared<M> {
    inboxes: Vec<Inbox<M>>,
    latency: LatencyModel,
    faults: FaultTable,
    stats: NetStats,
    seq: AtomicU64,
    chaos: RwLock<Option<ChaosRuntime<M>>>,
}

/// A simulated message-passing network with a fixed set of nodes.
///
/// `Network` is cheap to clone (it is an `Arc` handle). Each logical node
/// obtains an [`Endpoint`] for sending and receiving. Message payloads are
/// the caller's own type `M`; the DTM layer instantiates this with its
/// protocol message enum.
pub struct Network<M> {
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send + 'static> Network<M> {
    /// Create a network with `nodes` addressable nodes and the given
    /// latency model.
    pub fn new(nodes: usize, latency: LatencyModel) -> Self {
        let inboxes = (0..nodes).map(|_| Inbox::new()).collect();
        Network {
            shared: Arc::new(Shared {
                inboxes,
                latency,
                faults: FaultTable::new(),
                stats: NetStats::default(),
                seq: AtomicU64::new(0),
                chaos: RwLock::new(None),
            }),
        }
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.shared.inboxes.len()
    }

    /// Obtain the endpoint for `node`. Multiple endpoints for the same node
    /// may coexist (e.g., a sender handle cloned into another thread), but
    /// only one thread should call the receive methods for a given node.
    pub fn endpoint(&self, node: NodeId) -> Endpoint<M> {
        assert!(
            node.index() < self.shared.inboxes.len(),
            "node {node} out of range ({} nodes)",
            self.shared.inboxes.len()
        );
        Endpoint {
            id: node,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Fault-injection handle: mark a node failed. In-flight and future
    /// messages to it are dropped until [`Network::recover`].
    pub fn fail(&self, node: NodeId) {
        self.shared.faults.fail(node);
        self.shared.inboxes[node.index()].drain();
    }

    /// Fault-injection handle: crash `node` **with amnesia** — besides
    /// failing it and dropping in-flight messages (as [`Network::fail`]),
    /// its amnesia epoch is advanced so the node's own service loop (via
    /// [`Endpoint::amnesia_epoch`]) wipes its state before serving again.
    pub fn fail_amnesia(&self, node: NodeId) {
        self.shared.faults.fail(node);
        self.shared.inboxes[node.index()].drain();
        self.shared.faults.bump_amnesia(node);
    }

    /// `node`'s amnesia epoch (0 = never amnesia-crashed).
    pub fn amnesia_epoch(&self, node: NodeId) -> u64 {
        self.shared.faults.amnesia_epoch(node)
    }

    /// Fault-injection handle: crash `node` **preserving its durable
    /// log** — it is failed and its in-flight messages dropped (as
    /// [`Network::fail`]), and its restart epoch is advanced so the
    /// node's own service loop (via [`Endpoint::restart_epoch`]) drops
    /// volatile state and replays its log before serving again.
    pub fn fail_restart(&self, node: NodeId) {
        self.shared.faults.fail(node);
        self.shared.inboxes[node.index()].drain();
        self.shared.faults.bump_restart(node);
    }

    /// `node`'s crash-restart epoch (0 = never restart-crashed).
    pub fn restart_epoch(&self, node: NodeId) -> u64 {
        self.shared.faults.restart_epoch(node)
    }

    /// Recover a previously failed node.
    ///
    /// The inbox is drained again on recovery: a sender that raced past the
    /// fault check while [`Network::fail`]'s drain ran can still have pushed
    /// a pre-crash message afterwards, and a recovering node must not replay
    /// stale pre-crash traffic.
    pub fn recover(&self, node: NodeId) {
        self.shared.inboxes[node.index()].drain();
        self.shared.faults.recover(node);
    }

    /// Is `node` currently failed?
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.shared.faults.is_failed(node)
    }

    /// Snapshot of the failed-node set.
    pub fn failed_set(&self) -> std::collections::HashSet<NodeId> {
        self.shared.faults.failed_set()
    }

    /// Fail the directed link `src → dst`: messages in that direction are
    /// silently dropped until [`Network::heal_link`]. Neither node is
    /// crashed and nothing is drained.
    pub fn fail_link(&self, src: NodeId, dst: NodeId) {
        self.shared.faults.fail_link(src, dst);
    }

    /// Heal the directed link `src → dst`.
    pub fn heal_link(&self, src: NodeId, dst: NodeId) {
        self.shared.faults.heal_link(src, dst);
    }

    /// Is the directed link `src → dst` currently failed?
    pub fn is_link_failed(&self, src: NodeId, dst: NodeId) -> bool {
        self.shared.faults.is_link_failed(src, dst)
    }

    /// Partition the listed groups from each other (both directions of
    /// every cross-group link fail). Nodes in no group keep full
    /// connectivity.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        self.shared.faults.partition(groups);
    }

    /// Heal every failed link, partitions included.
    pub fn heal_all_links(&self) {
        self.shared.faults.heal_all_links();
    }

    /// Install a chaos plan. `classify` maps each payload to the
    /// [`MsgKind`] the plan's rules filter on. Replaces any previous plan
    /// and resets the per-link message counters.
    pub fn set_chaos(
        &self,
        plan: FaultPlan,
        classify: impl Fn(&M) -> MsgKind + Send + Sync + 'static,
    ) {
        *self.shared.chaos.write() = Some(ChaosRuntime {
            plan,
            classify: Box::new(classify),
            counters: Mutex::new(HashMap::new()),
        });
    }

    /// Remove the installed chaos plan (timed link/node faults already
    /// applied stay in force until healed individually).
    pub fn clear_chaos(&self) {
        *self.shared.chaos.write() = None;
    }

    /// Apply one scheduled fault action now.
    pub fn apply_fault(&self, action: &FaultAction) {
        match action {
            FaultAction::Crash(n) => self.fail(*n),
            FaultAction::CrashAmnesia(n) => self.fail_amnesia(*n),
            FaultAction::CrashRestart(n) => self.fail_restart(*n),
            FaultAction::Recover(n) => self.recover(*n),
            FaultAction::FailLink { src, dst } => self.fail_link(*src, *dst),
            FaultAction::HealLink { src, dst } => self.heal_link(*src, *dst),
            FaultAction::Partition(groups) => self.partition(groups),
            FaultAction::HealAllLinks => self.heal_all_links(),
        }
    }

    /// Apply `events` (sorted or not) at their offsets from `start`,
    /// sleeping in between. Blocks until the last event has fired; run it
    /// on a supervisor thread alongside the workload.
    pub fn run_fault_schedule(&self, events: &[TimedFault], start: Instant) {
        let mut ordered: Vec<&TimedFault> = events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        for ev in ordered {
            let due = start + ev.at;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            self.apply_fault(&ev.action);
        }
    }

    /// Delivery statistics.
    pub fn stats(&self) -> crate::stats::NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Close every inbox, unblocking all receivers with [`RecvError::Closed`].
    pub fn shutdown(&self) {
        for inbox in &self.shared.inboxes {
            inbox.close();
        }
    }
}

/// Timing metadata of one received message, for span tracing: the gap
/// `deliver_at − sent_at` is modelled wire latency, `received_at −
/// deliver_at` is inbox dwell (server queueing) — the time the message sat
/// mature in the inbox before the service loop picked it up.
#[derive(Debug, Clone, Copy)]
pub struct RecvMeta {
    /// When the sender handed the message to the network.
    pub sent_at: Instant,
    /// When the message became observable at the destination.
    pub deliver_at: Instant,
    /// When the receiving thread actually dequeued it.
    pub received_at: Instant,
}

/// A node's connection to the network.
pub struct Endpoint<M> {
    id: NodeId,
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            id: self.id,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send + Clone + 'static> Endpoint<M> {
    /// The node this endpoint belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send `payload` to `to`. The message is delayed by a latency sample
    /// and dropped if the destination is failed. Sending from a failed node
    /// is also suppressed (a crashed host emits nothing).
    ///
    /// The message's wire size is approximated as `size_of::<M>()`; callers
    /// with variable-size payloads should use [`Endpoint::send_sized`].
    pub fn send(&self, to: NodeId, payload: M) {
        self.send_sized(to, payload, std::mem::size_of::<M>() as u64);
    }

    /// [`Endpoint::send`] with an explicit wire size for byte accounting.
    pub fn send_sized(&self, to: NodeId, payload: M, bytes: u64) {
        self.dispatch(to, Payload::Owned(payload), bytes);
    }

    /// Send one payload to every member of `members`, allocating it once
    /// and sharing it via `Arc` instead of cloning per member.
    ///
    /// Each member is still treated as an independent point-to-point send:
    /// its own fault check, its own latency sample, its own sequence number
    /// and its own message/byte counters. Sharing the allocation changes
    /// simulator cost only, never the modelled network behaviour.
    pub fn broadcast(&self, members: &[NodeId], payload: M, bytes_per_member: u64) {
        let shared = Arc::new(payload);
        for &to in members {
            self.dispatch(to, Payload::Shared(Arc::clone(&shared)), bytes_per_member);
        }
    }

    fn dispatch(&self, to: NodeId, payload: Payload<M>, bytes: u64) {
        self.shared.stats.record_sent(bytes);
        if self.shared.faults.is_failed(self.id) || self.shared.faults.is_failed(to) {
            self.shared.stats.record_dropped_failed();
            return;
        }
        if self.shared.faults.is_link_failed(self.id, to) {
            self.shared.stats.record_dropped_link();
            return;
        }
        // Chaos fate: drop, duplicate, delay, or deliver. `extra` is the
        // added latency for the delayed copy; a duplicate's second copy
        // carries it (first copy ships normally), a plain delay applies it
        // to the only copy.
        let mut duplicate = false;
        let mut extra = Duration::ZERO;
        if let Some(rt) = self.shared.chaos.read().as_ref() {
            let kind = (rt.classify)(payload.message());
            let n = rt.next_seq(self.id, to, kind);
            match rt.plan.decide(self.id, to, kind, n) {
                ChaosDecision::Deliver => {}
                ChaosDecision::Drop => {
                    self.shared.stats.record_dropped_chaos();
                    return;
                }
                ChaosDecision::Duplicate => {
                    duplicate = true;
                    self.shared.stats.record_chaos_duplicated();
                }
                ChaosDecision::Delay(d) => {
                    extra = d;
                    self.shared.stats.record_chaos_delayed();
                }
                ChaosDecision::DuplicateDelayed(d) => {
                    duplicate = true;
                    extra = d;
                    self.shared.stats.record_chaos_duplicated();
                    self.shared.stats.record_chaos_delayed();
                }
            }
        }
        if duplicate {
            self.enqueue(to, payload.clone(), bytes, Duration::ZERO);
            self.enqueue(to, payload, bytes, extra);
        } else {
            self.enqueue(to, payload, bytes, extra);
        }
    }

    fn enqueue(&self, to: NodeId, payload: Payload<M>, bytes: u64, extra: Duration) {
        let delay = self.shared.latency.sample(&mut rand::thread_rng()) + extra;
        let now = Instant::now();
        let env = Envelope {
            src: self.id,
            dst: to,
            sent_at: now,
            deliver_at: now + delay,
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            payload,
        };
        let inbox = &self.shared.inboxes[to.index()];
        if !inbox.push(env) {
            self.shared.stats.record_dropped_closed();
            return;
        }
        // Close the crash/push race: if `to` failed after our fault check,
        // its crash drain may have run before this push landed, leaving a
        // stale message to be replayed at recovery. (Recovery drains too;
        // this keeps the inbox clean even while the node stays down.)
        if self.shared.faults.is_failed(to) {
            inbox.drain();
            self.shared.stats.record_dropped_failed();
            return;
        }
        self.shared.stats.record_delivered(bytes);
    }

    /// Blocking receive with a timeout. Returns the sender and payload.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), RecvError> {
        self.shared.inboxes[self.id.index()]
            .recv_timeout(timeout)
            .map(|e| (e.src, e.payload.into_inner()))
    }

    /// Blocking receive with an absolute deadline.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<(NodeId, M), RecvError> {
        self.shared.inboxes[self.id.index()]
            .recv_deadline(deadline)
            .map(|e| (e.src, e.payload.into_inner()))
    }

    /// [`Endpoint::recv_timeout`] that also reports the message's timing
    /// metadata (see [`RecvMeta`]).
    pub fn recv_timeout_meta(&self, timeout: Duration) -> Result<(NodeId, M, RecvMeta), RecvError> {
        self.recv_deadline_meta(Instant::now() + timeout)
    }

    /// [`Endpoint::recv_deadline`] that also reports the message's timing
    /// metadata (see [`RecvMeta`]).
    pub fn recv_deadline_meta(
        &self,
        deadline: Instant,
    ) -> Result<(NodeId, M, RecvMeta), RecvError> {
        self.shared.inboxes[self.id.index()]
            .recv_deadline(deadline)
            .map(|e| {
                let meta = RecvMeta {
                    sent_at: e.sent_at,
                    deliver_at: e.deliver_at,
                    received_at: Instant::now(),
                };
                (e.src, e.payload.into_inner(), meta)
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(NodeId, M)> {
        self.shared.inboxes[self.id.index()]
            .try_recv()
            .map(|e| (e.src, e.payload.into_inner()))
    }

    /// Number of queued (possibly not yet mature) messages.
    pub fn pending(&self) -> usize {
        self.shared.inboxes[self.id.index()].len()
    }

    /// Is this endpoint's own node failed?
    pub fn is_failed(&self) -> bool {
        self.shared.faults.is_failed(self.id)
    }

    /// This node's amnesia epoch. A service loop that observes the epoch
    /// moving past the last value it acted on must treat its local state
    /// as lost: wipe, then catch up before serving.
    pub fn amnesia_epoch(&self) -> u64 {
        self.shared.faults.amnesia_epoch(self.id)
    }

    /// This node's crash-restart epoch. A service loop that observes the
    /// epoch moving past the last value it acted on must drop volatile
    /// state and replay its durable log before serving.
    pub fn restart_epoch(&self) -> u64 {
        self.shared.faults.restart_epoch(self.id)
    }

    /// Upper-bound one-way latency of the network's model (for timeouts).
    pub fn max_latency(&self) -> Duration {
        self.shared.latency.max_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let net: Network<u32> = Network::new(3, LatencyModel::Zero);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 99);
        let (src, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((src, v), (NodeId(0), 99));
    }

    #[test]
    fn fifo_under_zero_latency() {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        for i in 0..100 {
            a.send(NodeId(1), i);
        }
        for i in 0..100 {
            let (_, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let net: Network<u32> = Network::new(2, LatencyModel::Constant(Duration::from_millis(15)));
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let start = Instant::now();
        a.send(NodeId(1), 1);
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(14));
    }

    #[test]
    fn messages_to_failed_node_are_dropped() {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        net.fail(NodeId(1));
        a.send(NodeId(1), 7);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
        net.recover(NodeId(1));
        a.send(NodeId(1), 8);
        let (_, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(v, 8);
    }

    #[test]
    fn failing_a_node_drops_inflight_messages() {
        let net: Network<u32> = Network::new(2, LatencyModel::Constant(Duration::from_millis(50)));
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 1); // in flight for 50 ms
        net.fail(NodeId(1));
        net.recover(NodeId(1));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            RecvError::Timeout,
            "in-flight message should have been lost with the crash"
        );
    }

    #[test]
    fn amnesia_crash_fails_drains_and_bumps_epoch() {
        let net: Network<u32> = Network::new(2, LatencyModel::Constant(Duration::from_millis(50)));
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        assert_eq!(b.amnesia_epoch(), 0);
        a.send(NodeId(1), 1); // in flight for 50 ms
        net.fail_amnesia(NodeId(1));
        assert!(net.is_failed(NodeId(1)), "amnesia crash is also a crash");
        assert_eq!(net.amnesia_epoch(NodeId(1)), 1);
        net.recover(NodeId(1));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            RecvError::Timeout,
            "in-flight message lost with the crash"
        );
        assert_eq!(
            b.amnesia_epoch(),
            1,
            "epoch survives recovery for the node to act on"
        );
        a.send(NodeId(1), 2);
        let (_, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(v, 2, "recovered node is reachable again");
    }

    #[test]
    fn restart_crash_fails_drains_and_bumps_only_its_epoch() {
        let net: Network<u32> = Network::new(2, LatencyModel::Constant(Duration::from_millis(50)));
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        assert_eq!(b.restart_epoch(), 0);
        a.send(NodeId(1), 1); // in flight for 50 ms
        net.fail_restart(NodeId(1));
        assert!(net.is_failed(NodeId(1)), "restart crash is also a crash");
        assert_eq!(net.restart_epoch(NodeId(1)), 1);
        assert_eq!(
            net.amnesia_epoch(NodeId(1)),
            0,
            "a restart preserves the log: amnesia must not fire"
        );
        net.recover(NodeId(1));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            RecvError::Timeout,
            "in-flight message lost with the crash"
        );
        assert_eq!(
            b.restart_epoch(),
            1,
            "epoch survives recovery for the node to act on"
        );
        a.send(NodeId(1), 2);
        let (_, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(v, 2, "recovered node is reachable again");
    }

    #[test]
    fn failed_sender_emits_nothing() {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        net.fail(NodeId(0));
        a.send(NodeId(1), 1);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let net: Network<u32> = Network::new(1, LatencyModel::Zero);
        let e = net.endpoint(NodeId(0));
        let n2 = net.clone();
        let h = std::thread::spawn(move || e.recv_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        n2.shutdown();
        assert_eq!(h.join().unwrap().unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn recv_meta_separates_wire_time_from_inbox_dwell() {
        let net: Network<u32> = Network::new(2, LatencyModel::Constant(Duration::from_millis(10)));
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 5);
        std::thread::sleep(Duration::from_millis(25)); // let it sit mature
        let (_, v, meta) = b.recv_timeout_meta(Duration::from_secs(1)).unwrap();
        assert_eq!(v, 5);
        assert!(meta.deliver_at - meta.sent_at >= Duration::from_millis(10));
        assert!(
            meta.received_at - meta.deliver_at >= Duration::from_millis(10),
            "message matured well before the receive, so dwell must show"
        );
    }

    #[test]
    fn stats_track_sends_and_drops() {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let a = net.endpoint(NodeId(0));
        a.send(NodeId(1), 1);
        net.fail(NodeId(1));
        a.send(NodeId(1), 2);
        let s = net.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped_failed, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_out_of_range_panics() {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let _ = net.endpoint(NodeId(5));
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let net: Network<u64> = Network::new(5, LatencyModel::lan());
        let rx = net.endpoint(NodeId(4));
        let mut handles = Vec::new();
        for n in 0..4u32 {
            let ep = net.endpoint(NodeId(n));
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    ep.send(NodeId(4), u64::from(n) * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = std::collections::HashSet::new();
        for _ in 0..200 {
            let (_, v) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(got.insert(v), "duplicate delivery of {v}");
        }
        assert_eq!(got.len(), 200);
    }
}
