//! Node identity.

use std::fmt;

/// Identity of a logical node in the simulated network.
///
/// Nodes are numbered densely from zero; the network is created with a fixed
/// node count and every id below that count is valid. The DTM layer assigns
/// the first `S` ids to quorum servers and the rest to clients, mirroring
/// the paper's test-bed split (10 servers, up to 20 clients).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Numeric index of the node (usable directly as a `Vec` index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(7usize), NodeId(7));
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }

    #[test]
    fn display_and_debug_are_compact() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
