//! Network delivery statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for the whole network. All counters are monotonically
/// increasing; consumers take [`NetStats::snapshot`]s and difference them
/// per measurement interval.
///
/// Byte counters are driven by the sender's own size accounting
/// ([`crate::Endpoint::send_sized`] / [`crate::Endpoint::broadcast`]): the
/// simulator does not serialise payloads, so callers state the wire size of
/// each message. A broadcast that shares one payload allocation still
/// charges the full size once **per member**, because that is what would
/// cross a real network.
#[derive(Default)]
pub struct NetStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_failed: AtomicU64,
    dropped_closed: AtomicU64,
    dropped_link: AtomicU64,
    dropped_chaos: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_delayed: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_delivered: AtomicU64,
}

/// A point-in-time copy of the network counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Messages handed to the network by senders.
    pub sent: u64,
    /// Messages enqueued on a live destination inbox.
    pub delivered: u64,
    /// Messages dropped because the destination was failed.
    pub dropped_failed: u64,
    /// Messages dropped because the destination inbox was closed.
    pub dropped_closed: u64,
    /// Messages dropped because the directed link to the destination was
    /// failed (partitions count here, not under `dropped_failed`).
    pub dropped_link: u64,
    /// Messages dropped by a chaos rule's drop draw.
    pub dropped_chaos: u64,
    /// Extra copies enqueued by chaos duplication (each counts one extra
    /// delivery).
    pub chaos_duplicated: u64,
    /// Messages delayed-reordered by a chaos rule.
    pub chaos_delayed: u64,
    /// Payload bytes handed to the network (per destination, as declared by
    /// the sender).
    pub bytes_sent: u64,
    /// Payload bytes enqueued on live destination inboxes.
    pub bytes_delivered: u64,
}

impl NetStats {
    pub(crate) fn record_sent(&self, bytes: u64) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }
    pub(crate) fn record_delivered(&self, bytes: u64) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes_delivered.fetch_add(bytes, Ordering::Relaxed);
    }
    pub(crate) fn record_dropped_failed(&self) {
        self.dropped_failed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_dropped_closed(&self) {
        self.dropped_closed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_dropped_link(&self) {
        self.dropped_link.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_dropped_chaos(&self) {
        self.dropped_chaos.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_chaos_duplicated(&self) {
        self.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_chaos_delayed(&self) {
        self.chaos_delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters at this instant.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_failed: self.dropped_failed.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_link: self.dropped_link.load(Ordering::Relaxed),
            dropped_chaos: self.dropped_chaos.load(Ordering::Relaxed),
            chaos_duplicated: self.chaos_duplicated.load(Ordering::Relaxed),
            chaos_delayed: self.chaos_delayed.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_delivered: self.bytes_delivered.load(Ordering::Relaxed),
        }
    }
}

impl NetStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating, so a stale
    /// snapshot never underflows).
    pub fn since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            sent: self.sent.saturating_sub(earlier.sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            dropped_failed: self.dropped_failed.saturating_sub(earlier.dropped_failed),
            dropped_closed: self.dropped_closed.saturating_sub(earlier.dropped_closed),
            dropped_link: self.dropped_link.saturating_sub(earlier.dropped_link),
            dropped_chaos: self.dropped_chaos.saturating_sub(earlier.dropped_chaos),
            chaos_duplicated: self
                .chaos_duplicated
                .saturating_sub(earlier.chaos_duplicated),
            chaos_delayed: self.chaos_delayed.saturating_sub(earlier.chaos_delayed),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_delivered: self.bytes_delivered.saturating_sub(earlier.bytes_delivered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_sent(10);
        s.record_sent(20);
        s.record_delivered(10);
        s.record_dropped_failed();
        let snap = s.snapshot();
        assert_eq!(snap.sent, 2);
        assert_eq!(snap.delivered, 1);
        assert_eq!(snap.dropped_failed, 1);
        assert_eq!(snap.dropped_closed, 0);
        assert_eq!(snap.bytes_sent, 30);
        assert_eq!(snap.bytes_delivered, 10);
    }

    #[test]
    fn since_differences_snapshots() {
        let s = NetStats::default();
        s.record_sent(5);
        let a = s.snapshot();
        s.record_sent(7);
        s.record_delivered(7);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.sent, 1);
        assert_eq!(d.delivered, 1);
        assert_eq!(d.bytes_sent, 7);
        assert_eq!(d.bytes_delivered, 7);
    }

    #[test]
    fn since_saturates_on_reversed_order() {
        let s = NetStats::default();
        s.record_sent(1);
        let later = s.snapshot();
        let d = NetStatsSnapshot::default().since(&later);
        assert_eq!(d.sent, 0);
        assert_eq!(d.bytes_sent, 0);
    }
}
