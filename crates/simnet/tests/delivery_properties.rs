//! Property tests for the network's delivery semantics.

use acn_simnet::{LatencyModel, Network, NodeId};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once delivery: every message sent to a live node arrives
    /// exactly once, regardless of latency jitter and sender count.
    #[test]
    fn exactly_once_delivery(
        senders in 1usize..5,
        per_sender in 1usize..30,
        max_latency_us in 0u64..500,
    ) {
        let net: Network<(usize, usize)> = Network::new(
            senders + 1,
            if max_latency_us == 0 {
                LatencyModel::Zero
            } else {
                LatencyModel::Uniform {
                    min: Duration::ZERO,
                    max: Duration::from_micros(max_latency_us),
                }
            },
        );
        let rx = net.endpoint(NodeId(senders as u32));
        std::thread::scope(|s| {
            for t in 0..senders {
                let ep = net.endpoint(NodeId(t as u32));
                s.spawn(move || {
                    for k in 0..per_sender {
                        ep.send(NodeId(senders as u32), (t, k));
                    }
                });
            }
        });
        let mut got = std::collections::HashSet::new();
        for _ in 0..senders * per_sender {
            let (_, msg) = rx
                .recv_timeout(Duration::from_secs(2))
                .expect("message lost");
            prop_assert!(got.insert(msg), "duplicate {msg:?}");
        }
        // And nothing extra.
        prop_assert!(rx.try_recv().is_none());
        prop_assert_eq!(got.len(), senders * per_sender);
    }

    /// Per-sender FIFO under constant latency: with equal delay for every
    /// message, one sender's messages arrive in send order.
    #[test]
    fn per_sender_fifo_under_constant_latency(
        n in 1usize..60,
        latency_us in 0u64..200,
    ) {
        let net: Network<usize> =
            Network::new(2, LatencyModel::Constant(Duration::from_micros(latency_us)));
        let tx = net.endpoint(NodeId(0));
        let rx = net.endpoint(NodeId(1));
        for k in 0..n {
            tx.send(NodeId(1), k);
        }
        for expect in 0..n {
            let (_, got) = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    /// Fault isolation: messages sent while the destination is failed are
    /// lost; messages sent after recovery arrive. Counts match stats.
    #[test]
    fn failure_drops_are_accounted(
        before in 0usize..10,
        during in 0usize..10,
        after in 0usize..10,
    ) {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        let tx = net.endpoint(NodeId(0));
        let rx = net.endpoint(NodeId(1));
        for _ in 0..before {
            tx.send(NodeId(1), 0);
        }
        // Drain pre-failure traffic first: a crash also destroys whatever
        // is still queued at the host.
        let mut delivered = 0;
        while rx.try_recv().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, before);
        net.fail(NodeId(1));
        for _ in 0..during {
            tx.send(NodeId(1), 1);
        }
        net.recover(NodeId(1));
        for _ in 0..after {
            tx.send(NodeId(1), 2);
        }
        let mut delivered = 0;
        while rx.try_recv().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, after);
        let stats = net.stats();
        prop_assert_eq!(stats.sent as usize, before + during + after);
        prop_assert_eq!(stats.dropped_failed as usize, during);
    }
}
