//! Integration tests for the chaos layer: link faults, partitions, and
//! seeded per-message drop/dup/delay injection.

use acn_simnet::{
    ChaosRule, FaultAction, FaultPlan, LatencyModel, Network, NodeId, RecvError, TimedFault,
};
use std::time::{Duration, Instant};

const KIND_PING: u8 = 1;
const KIND_PONG: u8 = 2;

fn classify(m: &u32) -> u8 {
    if (*m).is_multiple_of(2) {
        KIND_PING
    } else {
        KIND_PONG
    }
}

#[test]
fn link_fault_is_asymmetric() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    net.fail_link(NodeId(0), NodeId(1));
    a.send(NodeId(1), 1);
    assert_eq!(
        b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout,
        "failed direction drops"
    );
    b.send(NodeId(0), 2);
    let (_, v) = a.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(v, 2, "reverse direction still delivers");
    net.heal_link(NodeId(0), NodeId(1));
    a.send(NodeId(1), 3);
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 3);
    assert_eq!(net.stats().dropped_link, 1);
}

#[test]
fn partition_splits_and_heals() {
    let net: Network<u32> = Network::new(4, LatencyModel::Zero);
    let eps: Vec<_> = (0..4).map(|i| net.endpoint(NodeId(i))).collect();
    net.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
    // Intra-group works.
    eps[0].send(NodeId(1), 10);
    assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().1, 10);
    eps[2].send(NodeId(3), 20);
    assert_eq!(eps[3].recv_timeout(Duration::from_secs(1)).unwrap().1, 20);
    // Cross-group drops in both directions.
    eps[0].send(NodeId(2), 30);
    eps[2].send(NodeId(0), 40);
    assert_eq!(
        eps[2].recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout
    );
    assert_eq!(
        eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout
    );
    net.heal_all_links();
    eps[0].send(NodeId(2), 50);
    assert_eq!(eps[2].recv_timeout(Duration::from_secs(1)).unwrap().1, 50);
}

#[test]
fn chaos_drop_all_suppresses_delivery() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    net.set_chaos(
        FaultPlan::with_rules(5, vec![ChaosRule::all(1.0, 0.0, 0.0, Duration::ZERO)]),
        classify,
    );
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    for i in 0..20 {
        a.send(NodeId(1), i);
    }
    assert_eq!(
        b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout
    );
    let s = net.stats();
    assert_eq!(s.dropped_chaos, 20);
    assert_eq!(s.delivered, 0);
    net.clear_chaos();
    a.send(NodeId(1), 99);
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 99);
}

#[test]
fn chaos_duplicates_deliver_twice() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    net.set_chaos(
        FaultPlan::with_rules(5, vec![ChaosRule::all(0.0, 1.0, 0.0, Duration::ZERO)]),
        classify,
    );
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    a.send(NodeId(1), 7);
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 7);
    assert_eq!(
        b.recv_timeout(Duration::from_secs(1)).unwrap().1,
        7,
        "duplicate copy arrives too"
    );
    let s = net.stats();
    assert_eq!(s.sent, 1);
    assert_eq!(s.delivered, 2);
    assert_eq!(s.chaos_duplicated, 1);
}

#[test]
fn chaos_delay_reorders_behind_later_traffic() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    // Kind PING (even values) delayed 30 ms; PONG unaffected.
    net.set_chaos(
        FaultPlan::with_rules(
            5,
            vec![ChaosRule::for_kind(
                KIND_PING,
                0.0,
                0.0,
                1.0,
                Duration::from_millis(30),
            )],
        ),
        classify,
    );
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    a.send(NodeId(1), 2); // PING, delayed
    a.send(NodeId(1), 3); // PONG, prompt
    assert_eq!(
        b.recv_timeout(Duration::from_secs(1)).unwrap().1,
        3,
        "later prompt message overtakes the delayed one"
    );
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 2);
    assert_eq!(net.stats().chaos_delayed, 1);
}

#[test]
fn chaos_kind_filter_spares_other_kinds() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    net.set_chaos(
        FaultPlan::with_rules(
            5,
            vec![ChaosRule::for_kind(
                KIND_PING,
                1.0,
                0.0,
                0.0,
                Duration::ZERO,
            )],
        ),
        classify,
    );
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    a.send(NodeId(1), 4); // PING: dropped
    a.send(NodeId(1), 5); // PONG: delivered
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 5);
    assert_eq!(
        b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout
    );
}

#[test]
fn same_seed_same_fates_across_networks() {
    // Two separate networks with the same plan and same traffic see the
    // same per-message decisions (delivery counts match exactly).
    let plan = FaultPlan::with_rules(77, vec![ChaosRule::all(0.3, 0.2, 0.0, Duration::ZERO)]);
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let net: Network<u32> = Network::new(2, LatencyModel::Zero);
        net.set_chaos(plan.clone(), classify);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        for i in 0..100 {
            a.send(NodeId(1), i * 2); // all PING so one (src,dst,kind) stream
        }
        let mut got = Vec::new();
        while let Ok((_, v)) = b.recv_timeout(Duration::from_millis(20)) {
            got.push(v);
        }
        outcomes.push(got);
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

#[test]
fn fault_schedule_applies_in_order() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    let events = vec![
        TimedFault {
            at: Duration::from_millis(0),
            action: FaultAction::FailLink {
                src: NodeId(0),
                dst: NodeId(1),
            },
        },
        TimedFault {
            at: Duration::from_millis(30),
            action: FaultAction::HealAllLinks,
        },
    ];
    let n2 = net.clone();
    let start = Instant::now();
    let h = std::thread::spawn(move || n2.run_fault_schedule(&events, start));
    std::thread::sleep(Duration::from_millis(10));
    a.send(NodeId(1), 1); // inside the fault window: dropped
    h.join().unwrap();
    a.send(NodeId(1), 2); // after heal: delivered
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 2);
    assert_eq!(net.stats().dropped_link, 1);
}

#[test]
fn recovery_does_not_replay_pre_crash_traffic() {
    // Hammer a node with sends from several threads while it is failed;
    // regardless of races between the fault check, the crash drain, and
    // the push, the inbox must be empty once things quiesce, so recovery
    // never replays pre-crash messages.
    let net: Network<u64> = Network::new(5, LatencyModel::Zero);
    let rx = net.endpoint(NodeId(4));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for n in 0..4u32 {
        let ep = net.endpoint(NodeId(n));
        let stop = std::sync::Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                ep.send(NodeId(4), i);
                i += 1;
            }
        }));
    }
    for _ in 0..20 {
        net.fail(NodeId(4));
        // A sender inside its push/self-drain window can make pending
        // transiently non-zero; it must settle back to zero.
        let deadline = Instant::now() + Duration::from_millis(200);
        while rx.pending() != 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(rx.pending(), 0, "failed node's inbox must stay drained");
        net.recover(NodeId(4));
        std::thread::sleep(Duration::from_millis(1));
    }
    net.fail(NodeId(4));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(rx.pending(), 0);
    net.recover(NodeId(4));
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout,
        "no stale pre-crash message may be replayed after recovery"
    );
}
