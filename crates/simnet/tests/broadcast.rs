//! Behavioural parity between [`Endpoint::broadcast`] and a loop of
//! per-member [`Endpoint::send_sized`] calls.
//!
//! The broadcast path shares one payload allocation across all member
//! envelopes, so these tests pin down that the *observable* network
//! behaviour — delivery, fault drops, latency, and every `NetStats`
//! counter — is identical to the unbatched loop it replaces.

use acn_simnet::{Endpoint, LatencyModel, Network, NodeId, RecvError};
use std::time::{Duration, Instant};

fn members(n: u32) -> Vec<NodeId> {
    (1..=n).map(NodeId).collect()
}

#[test]
fn broadcast_delivers_to_every_member_exactly_once() {
    let net: Network<Vec<u64>> = Network::new(5, LatencyModel::Zero);
    let tx = net.endpoint(NodeId(0));
    let payload: Vec<u64> = (0..64).collect();
    tx.broadcast(&members(4), payload.clone(), 512);
    for m in members(4) {
        let ep = net.endpoint(m);
        let (src, got) = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(src, NodeId(0));
        assert_eq!(got, payload, "member {m} saw a corrupted shared payload");
        assert!(ep.try_recv().is_none(), "member {m} got a duplicate");
    }
}

#[test]
fn broadcast_counters_match_unbatched_sends() {
    let run = |batched: bool| {
        let net: Network<Vec<u64>> = Network::new(5, LatencyModel::Zero);
        net.fail(NodeId(3)); // one failed member in the group
        let tx = net.endpoint(NodeId(0));
        let payload: Vec<u64> = (0..32).collect();
        if batched {
            tx.broadcast(&members(4), payload, 300);
        } else {
            for m in members(4) {
                tx.send_sized(m, payload.clone(), 300);
            }
        }
        net.stats()
    };
    let (a, b) = (run(true), run(false));
    assert_eq!(
        a, b,
        "broadcast and per-member send must account identically"
    );
    assert_eq!(a.sent, 4);
    assert_eq!(a.delivered, 3);
    assert_eq!(a.dropped_failed, 1);
    assert_eq!(a.bytes_sent, 4 * 300);
    assert_eq!(a.bytes_delivered, 3 * 300);
}

#[test]
fn broadcast_drops_only_failed_members() {
    let net: Network<u32> = Network::new(4, LatencyModel::Zero);
    let tx = net.endpoint(NodeId(0));
    net.fail(NodeId(2));
    tx.broadcast(&members(3), 7, 10);
    for m in members(3) {
        let ep = net.endpoint(m);
        if m == NodeId(2) {
            assert_eq!(
                ep.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvError::Timeout,
                "failed member must not receive"
            );
        } else {
            assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap().1, 7);
        }
    }
}

#[test]
fn broadcast_from_failed_sender_emits_nothing() {
    let net: Network<u32> = Network::new(4, LatencyModel::Zero);
    let tx = net.endpoint(NodeId(0));
    net.fail(NodeId(0));
    tx.broadcast(&members(3), 9, 10);
    let s = net.stats();
    assert_eq!(s.sent, 3);
    assert_eq!(s.dropped_failed, 3);
    assert_eq!(s.delivered, 0);
    for m in members(3) {
        assert_eq!(
            net.endpoint(m)
                .recv_timeout(Duration::from_millis(10))
                .unwrap_err(),
            RecvError::Timeout
        );
    }
}

#[test]
fn broadcast_members_get_independent_latency_samples() {
    // With a constant model every member waits the full delay, exactly as
    // a per-member send loop would.
    let delay = Duration::from_millis(15);
    let net: Network<u32> = Network::new(4, LatencyModel::Constant(delay));
    let tx = net.endpoint(NodeId(0));
    let start = Instant::now();
    tx.broadcast(&members(3), 1, 10);
    for m in members(3) {
        net.endpoint(m)
            .recv_timeout(Duration::from_secs(1))
            .unwrap();
        assert!(
            start.elapsed() >= delay - Duration::from_millis(1),
            "member {m} delivered early"
        );
    }
    // With a jittered model each member's envelope is sampled separately:
    // over many rounds, two members of the same broadcast must observe
    // different delays at least once (pinned samples would always match).
    let net: Network<u32> = Network::new(
        3,
        LatencyModel::Uniform {
            min: Duration::from_micros(10),
            max: Duration::from_millis(5),
        },
    );
    let tx = net.endpoint(NodeId(0));
    let (r1, r2) = (net.endpoint(NodeId(1)), net.endpoint(NodeId(2)));
    let recv_at = |ep: &Endpoint<u32>| {
        ep.recv_timeout(Duration::from_secs(1)).unwrap();
        Instant::now()
    };
    let mut diverged = false;
    for _ in 0..50 {
        let t0 = Instant::now();
        tx.broadcast(&members(2), 1, 10);
        let d1 = recv_at(&r1) - t0;
        let d2 = recv_at(&r2) - t0;
        if d1.abs_diff(d2) > Duration::from_micros(200) {
            diverged = true;
            break;
        }
    }
    assert!(diverged, "per-member latency samples appear to be shared");
}

#[test]
fn broadcast_to_empty_member_list_is_a_no_op() {
    let net: Network<u32> = Network::new(2, LatencyModel::Zero);
    net.endpoint(NodeId(0)).broadcast(&[], 1, 10);
    assert_eq!(net.stats().sent, 0);
}
