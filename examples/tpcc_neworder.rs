//! TPC-C NewOrder: watch ACN move the hot District block toward commit.
//!
//! Analyzes the NewOrder template, prints the static Block sequence, then
//! the sequence ACN derives once it has seen District-heavy contention —
//! the District open shifts as close to the commit phase as the
//! Order/NewOrder/OrderLine id derivations allow (they read the District's
//! next-order id, so they must stay after it). Finally runs the profile on
//! a live cluster.
//!
//! ```sh
//! cargo run --release --example tpcc_neworder
//! ```

use acn_workloads::schema;
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use qr_acn::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let tpcc = Tpcc::new(TpccConfig::default(), TpccMix::NEW_ORDER);
    // Template index 2 is the 5-line NewOrder.
    let program = tpcc.templates()[2].clone();
    let dm = Arc::new(DependencyModel::analyze(program).expect("valid template"));
    println!("NewOrder(5 lines): {} UnitBlocks", dm.unit_count());

    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig::default(),
    );
    println!(
        "\nstatic sequence:\n  {}",
        controller.current().describe(&dm)
    );

    // District is the hot spot in a pure NewOrder workload; stocks see
    // moderate writes; everything else is cold.
    let levels: HashMap<u16, f64> = [
        (schema::DISTRICT.id, 20.0),
        (schema::STOCK.id, 2.0),
        (schema::WAREHOUSE.id, 0.0),
        (schema::CUSTOMER.id, 0.0),
        (schema::ITEM.id, 0.0),
        (schema::ORDER.id, 0.5),
        (schema::NEW_ORDER.id, 0.5),
        (schema::ORDER_LINE.id, 0.5),
    ]
    .into();
    controller.refresh_with_levels(&levels);
    println!(
        "\nACN sequence under District contention:\n  {}",
        controller.current().describe(&dm)
    );

    // And measure throughput for a short run of the full profile.
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrAcn, 6);
    cfg.intervals = 4;
    cfg.interval = Duration::from_millis(300);
    cfg.controller.period = Duration::from_millis(150);
    println!("\nrunning 100% NewOrder with QR-ACN …");
    let r = acn_workloads::run_scenario(&tpcc, &cfg);
    for i in 0..cfg.intervals {
        println!("  t{}: {:>6.0} txn/s", i + 1, r.throughput(i));
    }
    println!(
        "  {} commits, {} partial aborts, {} reconfigurations",
        r.total_commits(),
        r.total_partial_aborts(),
        r.refreshes
    );
}
