//! Fault tolerance: tree quorums keep the DTM available through failures.
//!
//! Kills leaf replicas while transactions run (reads and writes survive),
//! then the tree root (writes block, reads survive), then recovers it.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use qr_acn::prelude::*;

const COUNTER: ObjClass = ObjClass::new(0, "Counter");
const VAL: FieldId = FieldId(0);

fn increment(client: &mut DtmClient) -> Result<i64, DtmError> {
    let obj = ObjectId::new(COUNTER, 0);
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, true)?;
    let v = ctx.get_field(obj, VAL).as_int().unwrap();
    ctx.set_field(obj, VAL, Value::Int(v + 1));
    ctx.commit(client)?;
    Ok(v + 1)
}

fn main() {
    // 10 servers in a ternary tree: root 0, mid-level 1–3, leaves 4–9.
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut client = cluster.client(0);

    println!("healthy cluster:");
    for _ in 0..3 {
        println!("  counter = {}", increment(&mut client).unwrap());
    }

    println!("failing leaf servers 4 and 9 …");
    cluster.fail_server(4);
    cluster.fail_server(9);
    for _ in 0..3 {
        println!(
            "  counter = {} (still committing)",
            increment(&mut client).unwrap()
        );
    }

    println!("failing the tree root (server 0) …");
    cluster.fail_server(0);
    match increment(&mut client) {
        Err(DtmError::Unavailable) => {
            println!("  write unavailable, as tree quorums require the root")
        }
        other => println!("  unexpected: {other:?}"),
    }
    // Reads still work: a read quorum is a majority of one level.
    let obj = ObjectId::new(COUNTER, 0);
    let mut ctx = TxnCtx::begin(&mut client);
    ctx.open(&mut client, obj, false).unwrap();
    println!("  read survives: counter = {}", ctx.get_field(obj, VAL));
    ctx.commit(&mut client).unwrap();

    println!("recovering the root …");
    cluster.recover_server(0);
    println!("  counter = {}", increment(&mut client).unwrap());

    cluster.shutdown();
    println!("done.");
}
