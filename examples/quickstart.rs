//! Quickstart: define a transaction, let ACN decompose it, execute it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qr_acn::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
const BAL: FieldId = FieldId(0);

/// The paper's Figure 1 Bank transfer, written flat: branch operations
/// first, account operations second.
fn transfer() -> Program {
    let mut b = ProgramBuilder::new("transfer", 5);
    let amt = b.param(4);
    let br1 = b.open_update(BRANCH, b.param(0));
    let br2 = b.open_update(BRANCH, b.param(1));
    let v1 = b.get(br1, BAL);
    let n1 = b.sub(v1, amt);
    b.set(br1, BAL, n1);
    let v2 = b.get(br2, BAL);
    let n2 = b.add(v2, amt);
    b.set(br2, BAL, n2);
    let a1 = b.open_update(ACCOUNT, b.param(2));
    let a2 = b.open_update(ACCOUNT, b.param(3));
    let w1 = b.get(a1, BAL);
    let m1 = b.sub(w1, amt);
    b.set(a1, BAL, m1);
    let w2 = b.get(a2, BAL);
    let m2 = b.add(w2, amt);
    b.set(a2, BAL, m2);
    b.finish()
}

fn describe(seq: &BlockSeq) -> String {
    seq.block_units
        .iter()
        .map(|g| format!("{g:?}"))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn main() {
    // 1. Static Module: analyze the template into UnitBlocks.
    let dm = Arc::new(DependencyModel::analyze(transfer()).expect("valid template"));
    println!("template `{}`:", dm.program.name);
    println!(
        "  {} UnitBlocks, dependency edges: {:?}",
        dm.unit_count(),
        dm.default_unit_edges()
    );

    // 2. Bring up a paper-shaped cluster: 10 quorum servers, ternary tree,
    //    LAN-like latency, plus one client slot.
    let cluster = Cluster::start(ClusterConfig::paper(1));
    let mut client = cluster.client(0);

    // 3. The ACN controller starts from the static decomposition.
    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig::default(),
    );
    println!(
        "initial Block sequence : {}",
        describe(&controller.current())
    );

    // 4. Feed it contention levels (here: branches hot), as the Dynamic
    //    Module would at run time, and watch the recomposition: account
    //    blocks merge and run first, hot branch blocks merge and move to
    //    the commit side.
    let levels: HashMap<u16, f64> = [(BRANCH.id, 9.0), (ACCOUNT.id, 1.0)].into();
    controller.refresh_with_levels(&levels);
    println!(
        "adapted Block sequence : {}",
        describe(&controller.current())
    );

    // 5. Execute transfers through the Executor Engine.
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    for i in 0..100 {
        engine
            .run(
                &mut client,
                &dm.program,
                &[
                    Value::Int(i % 4),
                    Value::Int((i + 1) % 4),
                    Value::Int(100 + i),
                    Value::Int(200 + i),
                    Value::Int(5),
                ],
                &controller.current(),
                &mut stats,
            )
            .expect("transfer");
    }
    println!(
        "executed: {} commits, {} full aborts, {} partial aborts",
        stats.commits, stats.full_aborts, stats.partial_aborts
    );

    // 6. Verify the money moved.
    let mut ctx = TxnCtx::begin(&mut client);
    let b0 = ObjectId::new(BRANCH, 0);
    ctx.open(&mut client, b0, false).unwrap();
    println!("Branch#0 balance = {}", ctx.get_field(b0, BAL));
    ctx.commit(&mut client).unwrap();

    cluster.shutdown();
    println!("done.");
}
