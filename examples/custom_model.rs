//! Plugging a custom contention model into ACN.
//!
//! "QR-ACN is flexible … as it allows programmers or system administrators
//! to provide a custom model for calculating the contention level" (§V-C2).
//! This example defines a model that weights the hottest member of a Block
//! heavily (a paranoid "worst object dominates" policy), compares its
//! decisions against the default write-count sum and the analytic
//! abort-probability model, and runs all three on a live cluster.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use qr_acn::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const TELLER: ObjClass = ObjClass::new(1, "Teller");
const ACCOUNT: ObjClass = ObjClass::new(2, "Account");
const BAL: FieldId = FieldId(0);

/// Custom model: a Block is scored by its hottest member plus a small
/// crowding penalty per additional object — it prefers small hot Blocks.
struct WorstObjectDominates {
    crowding_penalty: f64,
}

impl ContentionModel for WorstObjectDominates {
    fn block_level(&self, unit_levels: &[f64]) -> f64 {
        let hottest = unit_levels.iter().copied().fold(0.0, f64::max);
        hottest + self.crowding_penalty * unit_levels.len().saturating_sub(1) as f64
    }
}

/// A TPC-B-flavoured transaction: one branch (hot), three tellers (warm),
/// one account (cold), all independently updatable. Three warm tellers
/// merge into one Block whose *sum* exceeds the branch's level while its
/// *max* stays below — so sum-like and max-like models order the hot tail
/// differently.
fn tpcb() -> Program {
    let mut b = ProgramBuilder::new("tpcb/update", 6);
    let amt = b.param(5);
    let br = b.open_update(BRANCH, b.param(0));
    let v0 = b.get(br, BAL);
    let n0 = b.add(v0, amt);
    b.set(br, BAL, n0);
    for t in 0..3 {
        let tl = b.open_update(TELLER, b.param(1 + t));
        let v = b.get(tl, BAL);
        let n = b.add(v, amt);
        b.set(tl, BAL, n);
    }
    let ac = b.open_update(ACCOUNT, b.param(4));
    let v2 = b.get(ac, BAL);
    let n2 = b.add(v2, amt);
    b.set(ac, BAL, n2);
    b.finish()
}

fn main() {
    let dm = Arc::new(DependencyModel::analyze(tpcb()).expect("valid template"));
    let levels: HashMap<u16, f64> = [(BRANCH.id, 15.0), (TELLER.id, 6.0), (ACCOUNT.id, 0.2)].into();

    let models: Vec<(&str, Box<dyn ContentionModel>)> = vec![
        ("write-count sum (default)", Box::new(SumModel)),
        ("hottest member (MaxModel)", Box::new(MaxModel)),
        (
            "analytic abort probability",
            Box::new(AbortProbabilityModel { exposure: 0.15 }),
        ),
        (
            "custom: worst object dominates",
            Box::new(WorstObjectDominates {
                crowding_penalty: 0.5,
            }),
        ),
    ];

    println!("contention: Branch=15, Teller=6 (x3), Account=0.2\n");
    for (name, model) in models {
        let module = AlgorithmModule::with_model(model);
        let seq = module.recompute(&dm, &levels);
        println!("{name:32} → {}", seq.describe(&dm));
    }

    // Execute a handful of transactions under the custom model's sequence.
    let module = AlgorithmModule::with_model(Box::new(WorstObjectDominates {
        crowding_penalty: 0.5,
    }));
    let seq = module.recompute(&dm, &levels);
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut client = cluster.client(0);
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    for k in 0..50i64 {
        engine
            .run(
                &mut client,
                &dm.program,
                &[
                    Value::Int(k % 2),
                    Value::Int(k % 10),
                    Value::Int((k + 3) % 10),
                    Value::Int((k + 7) % 10),
                    Value::Int(k % 100),
                    Value::Int(1),
                ],
                &seq,
                &mut stats,
            )
            .expect("tpcb update");
    }
    println!(
        "\nexecuted {} commits under the custom model's sequence",
        stats.commits
    );
    cluster.shutdown();
}
