//! Bank under a hot-set shift — a miniature of the paper's Figure 4(f).
//!
//! Runs the Bank benchmark for six measurement intervals with the hot
//! class flipping from branches to accounts mid-run, under all three
//! systems, and prints the per-interval throughput table. QR-ACN should
//! track the shift; QR-CN's manual decomposition goes stale.
//!
//! ```sh
//! cargo run --release --example bank_adaptive
//! ```

use acn_workloads::bank::{Bank, BankConfig};
use qr_acn::prelude::*;
use std::time::Duration;

fn main() {
    let bank = Bank::new(BankConfig {
        hot_pool: 4,
        cold_pool: 4096,
        write_pct: 90,
    });

    let systems = [SystemKind::QrDtm, SystemKind::QrCn, SystemKind::QrAcn];
    let mut results = Vec::new();
    for system in systems {
        let mut cfg = ScenarioConfig::scaled(system, 8);
        cfg.intervals = 6;
        cfg.interval = Duration::from_millis(300);
        cfg.controller.period = Duration::from_millis(150);
        // Hot set shifts in the 3rd interval (phase 0 → 1): branches cool
        // down, accounts heat up.
        cfg.phase_per_interval = vec![0, 0, 1, 1, 1, 1];
        println!("running {system} …");
        results.push(run_scenario(&bank, &cfg));
    }

    println!("\nthroughput (committed txn/s) per interval — hot set shifts at t3:");
    print!("{:>10}", "interval");
    for r in &results {
        print!("{:>10}", r.system.to_string());
    }
    println!();
    for i in 0..6 {
        print!("{:>10}", format!("t{}", i + 1));
        for r in &results {
            print!("{:>10.0}", r.throughput(i));
        }
        println!();
    }
    for r in &results {
        println!(
            "{}: {} commits, {} full aborts, {} partial aborts, {} reconfigurations",
            r.system,
            r.total_commits(),
            r.total_full_aborts(),
            r.total_partial_aborts(),
            r.refreshes
        );
    }
}
