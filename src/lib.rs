#![warn(missing_docs)]

//! # qr-acn — Automated Closed Nesting for Distributed Transactional Memory
//!
//! A from-scratch Rust reproduction of *"An Automated Framework for
//! Decomposing Memory Transactions to Exploit Partial Rollback"* (Dhoke,
//! Palmieri, Ravindran — IPPS 2015): the **ACN** framework, which
//! automatically decomposes flat memory transactions into closed-nested
//! sub-transactions and keeps the decomposition tuned to the live
//! workload, together with the entire substrate it runs on — a
//! quorum-replicated distributed transactional memory (QR-DTM / QR-CN), a
//! tree quorum protocol, a simulated message-passing network, and a
//! transaction IR with the static analysis the paper delegates to Soot.
//!
//! ## Crate map
//!
//! | module | re-exports | role |
//! |---|---|---|
//! | [`simnet`] | `acn-simnet` | message-passing network with latency models and fault injection |
//! | [`quorum`] | `acn-quorum` | Agrawal–El Abbadi tree quorums (level-majority + classic) |
//! | [`txir`] | `acn-txir` | transaction IR, UnitGraph, data-flow, UnitBlock extraction |
//! | [`dtm`] | `acn-dtm` | QR-DTM replication protocol + QR-CN closed nesting + contention windows |
//! | [`obs`] | `acn-obs` | observability: span tracer + critical paths, abort attribution, metrics export |
//! | [`core`] | `acn-core` | ACN: static/dynamic/algorithm modules, executor engine, controller |
//! | [`workloads`] | `acn-workloads` | Bank, Vacation, TPC-C + the measurement driver |
//!
//! ## Quickstart
//!
//! ```
//! use qr_acn::prelude::*;
//! use std::sync::Arc;
//!
//! // A transaction template: transfer with a hot Branch and a cold Account.
//! const BRANCH: ObjClass = ObjClass::new(0, "Branch");
//! const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
//! const BAL: FieldId = FieldId(0);
//!
//! let mut b = ProgramBuilder::new("transfer", 3);
//! let amt = b.param(2);
//! let br = b.open_update(BRANCH, b.param(0));
//! let v = b.get(br, BAL);
//! let n = b.sub(v, amt);
//! b.set(br, BAL, n);
//! let acc = b.open_update(ACCOUNT, b.param(1));
//! let w = b.get(acc, BAL);
//! let m = b.add(w, amt);
//! b.set(acc, BAL, m);
//! let program = b.finish();
//!
//! // Static Module: UnitBlocks + dependency model.
//! let dm = Arc::new(DependencyModel::analyze(program).unwrap());
//! assert_eq!(dm.unit_count(), 2);
//!
//! // Bring up a cluster (4 servers, 1 client, zero latency for the demo).
//! let cluster = Cluster::start(ClusterConfig::test(4, 1));
//! let mut client = cluster.client(0);
//!
//! // ACN controller: starts from the static decomposition, adapts on
//! // refresh. Execute one transaction through the Executor Engine.
//! let controller = AcnController::new(
//!     Arc::clone(&dm),
//!     AlgorithmModule::with_model(Box::new(SumModel)),
//!     ControllerConfig::default(),
//! );
//! let engine = ExecutorEngine::default();
//! let mut stats = ExecStats::default();
//! engine
//!     .run(
//!         &mut client,
//!         &dm.program,
//!         &[Value::Int(1), Value::Int(42), Value::Int(25)],
//!         &controller.current(),
//!         &mut stats,
//!     )
//!     .unwrap();
//! assert_eq!(stats.commits, 1);
//! cluster.shutdown();
//! ```

pub use acn_core as core;
pub use acn_dtm as dtm;
pub use acn_obs as obs;
pub use acn_quorum as quorum;
pub use acn_simnet as simnet;
pub use acn_txir as txir;
pub use acn_workloads as workloads;

/// One-stop imports for applications built on QR-ACN.
pub mod prelude {
    pub use acn_core::{
        AbortProbabilityModel, AcnController, AlgorithmModule, BlockSeq, ContentionModel,
        ControllerConfig, ExecStats, ExecutorEngine, MaxModel, RetryPolicy, RunError, StaticModule,
        SumModel,
    };
    pub use acn_dtm::{
        check_durability, check_history, ChildCtx, ClientConfig, Cluster, ClusterConfig,
        CommitRecord, DtmClient, DtmError, DurabilityMode, DurabilitySummary, FaultLogConfig,
        HistoryLog, HistorySummary, StoreDigest, SyncConfig, TxnCtx, TxnId, Violation,
    };
    pub use acn_obs::{
        aggregate_critpath, critical_path, parse_chrome_trace, parse_prom, record_flight,
        render_prom, report_to_prom, write_chrome_trace, AbortKind, AbortSite, AbortTable,
        CritPathRow, FlightRecord, LogHistogram, MetricsRegistry, MetricsReport, ObsConfig,
        PromMetric, SloInputs, SloPolicy, SloRule, SloTrigger, Span, SpanCollector, SpanKind,
        ThreadTraceRow, TraceCtx, TraceRing, TraceSummary, Tracer, TxnCritPath, TxnEvent,
        TxnObserver, WindowedSeries, WorkLedger, WorkTotals, WorkUnits, SERVER_TRACE_THREAD,
    };
    pub use acn_quorum::{DaryTree, LevelQuorums, ReadLevelPolicy};
    pub use acn_simnet::{
        ChaosProfile, ChaosRule, FaultAction, FaultPlan, LatencyModel, Network, NodeId, TimedFault,
    };
    pub use acn_txir::{
        AccessMode, ComputeOp, DependencyModel, FieldId, ObjClass, ObjectId, ObjectVal, Operand,
        Program, ProgramBuilder, Stmt, Value,
    };
    pub use acn_workloads::{
        run_scenario, BatchConfig, ScenarioConfig, ScenarioObs, ScenarioResult, SloConfig,
        SpecMode, SystemKind, TxnRequest, Workload,
    };
}
