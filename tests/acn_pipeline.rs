//! Cross-crate integration tests: the full ACN pipeline from template
//! analysis through adaptive execution on a live cluster.

use qr_acn::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
const BAL: FieldId = FieldId(0);

fn transfer() -> Program {
    let mut b = ProgramBuilder::new("it/transfer", 5);
    let amt = b.param(4);
    let br1 = b.open_update(BRANCH, b.param(0));
    let br2 = b.open_update(BRANCH, b.param(1));
    let v1 = b.get(br1, BAL);
    let n1 = b.sub(v1, amt);
    b.set(br1, BAL, n1);
    let v2 = b.get(br2, BAL);
    let n2 = b.add(v2, amt);
    b.set(br2, BAL, n2);
    let a1 = b.open_update(ACCOUNT, b.param(2));
    let a2 = b.open_update(ACCOUNT, b.param(3));
    let w1 = b.get(a1, BAL);
    let m1 = b.sub(w1, amt);
    b.set(a1, BAL, m1);
    let w2 = b.get(a2, BAL);
    let m2 = b.add(w2, amt);
    b.set(a2, BAL, m2);
    b.finish()
}

fn read_all(client: &mut DtmClient, class: ObjClass, n: u64) -> i64 {
    let mut total = 0;
    for i in 0..n {
        let obj = ObjectId::new(class, i);
        let mut ctx = TxnCtx::begin(client);
        ctx.open(client, obj, false).unwrap();
        total += ctx.get_field(obj, BAL).as_int().unwrap();
        ctx.commit(client).unwrap();
    }
    total
}

/// Money is conserved no matter which Block sequence executes the
/// transfers — flat, static per-unit, manual grouping or the adapted
/// hot-last composition — and no matter how they interleave.
#[test]
fn money_conserved_across_all_decompositions() {
    let dm = Arc::new(DependencyModel::analyze(transfer()).unwrap());
    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig::default(),
    );
    controller.refresh_with_levels(&[(BRANCH.id, 9.0), (ACCOUNT.id, 1.0)].into());
    let adapted = controller.current();

    let seqs: Vec<Arc<BlockSeq>> = vec![
        Arc::new(BlockSeq::flat(&dm)),
        Arc::new(BlockSeq::from_units(&dm)),
        Arc::new(BlockSeq::group_units(&dm, &[vec![0, 1], vec![2, 3]])),
        adapted,
    ];
    for seq in &seqs {
        seq.assert_respects_dependencies(&dm);
    }

    let cluster = Cluster::start(ClusterConfig::test(10, 4));
    std::thread::scope(|s| {
        for (t, seq) in seqs.iter().enumerate() {
            let mut client = cluster.client(t);
            let dm = Arc::clone(&dm);
            let seq = Arc::clone(seq);
            s.spawn(move || {
                let engine = ExecutorEngine::default();
                let mut stats = ExecStats::default();
                for k in 0..40u64 {
                    engine
                        .run(
                            &mut client,
                            &dm.program,
                            &[
                                Value::Int((k % 4) as i64),
                                Value::Int(((k + 1) % 4) as i64),
                                Value::Int(((t as u64 * 31 + k) % 64) as i64),
                                Value::Int(((t as u64 * 31 + k + 1) % 64) as i64),
                                Value::Int(7),
                            ],
                            &seq,
                            &mut stats,
                        )
                        .unwrap();
                }
                assert_eq!(stats.commits, 40);
            });
        }
    });

    let mut client = cluster.client(0);
    assert_eq!(
        read_all(&mut client, BRANCH, 4),
        0,
        "branch money conserved"
    );
    assert_eq!(
        read_all(&mut client, ACCOUNT, 64),
        0,
        "account money conserved"
    );
    cluster.shutdown();
}

/// Flat and adapted execution must produce identical final state for an
/// identical (deterministic, single-client) instance stream — the
/// decomposition is semantics-preserving.
#[test]
fn decomposition_preserves_semantics() {
    let dm = Arc::new(DependencyModel::analyze(transfer()).unwrap());
    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig::default(),
    );
    controller.refresh_with_levels(&[(BRANCH.id, 9.0), (ACCOUNT.id, 1.0)].into());
    let adapted = controller.current();
    let flat = Arc::new(BlockSeq::flat(&dm));

    let mut finals = Vec::new();
    for seq in [flat, adapted] {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        for k in 0..30u64 {
            engine
                .run(
                    &mut client,
                    &dm.program,
                    &[
                        Value::Int((k % 3) as i64),
                        Value::Int(((k + 1) % 3) as i64),
                        Value::Int((k % 5) as i64),
                        Value::Int(((k + 2) % 5) as i64),
                        Value::Int((k % 11) as i64 + 1),
                    ],
                    &seq,
                    &mut stats,
                )
                .unwrap();
        }
        let branches: Vec<i64> = (0..3)
            .map(|i| {
                let obj = ObjectId::new(BRANCH, i);
                let mut ctx = TxnCtx::begin(&mut client);
                ctx.open(&mut client, obj, false).unwrap();
                let v = ctx.get_field(obj, BAL).as_int().unwrap();
                ctx.commit(&mut client).unwrap();
                v
            })
            .collect();
        let accounts: Vec<i64> = (0..5)
            .map(|i| {
                let obj = ObjectId::new(ACCOUNT, i);
                let mut ctx = TxnCtx::begin(&mut client);
                ctx.open(&mut client, obj, false).unwrap();
                let v = ctx.get_field(obj, BAL).as_int().unwrap();
                ctx.commit(&mut client).unwrap();
                v
            })
            .collect();
        finals.push((branches, accounts));
        cluster.shutdown();
    }
    assert_eq!(finals[0], finals[1], "flat vs adapted state diverged");
}

/// The controller's full loop against a live cluster: hammer one branch,
/// let `maybe_refresh` observe it through the Dynamic Module, and verify
/// the installed sequence moved the hot class to the end.
#[test]
fn controller_adapts_from_live_contention() {
    let mut cluster_cfg = ClusterConfig::test(4, 2);
    cluster_cfg.window.window = std::time::Duration::from_millis(30);
    let cluster = Cluster::start(cluster_cfg);
    let dm = Arc::new(DependencyModel::analyze(transfer()).unwrap());
    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig {
            period: std::time::Duration::from_millis(50),
            alpha: 1.0,
            sampling: acn_core::SamplingMode::Explicit,
        },
    );
    // Initially static: four singleton blocks in program order.
    assert_eq!(
        controller.current().block_units,
        vec![vec![0], vec![1], vec![2], vec![3]]
    );

    // Generate branch-heavy traffic from client 0.
    let mut client = cluster.client(0);
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(400);
    let mut k = 0i64;
    while std::time::Instant::now() < deadline {
        engine
            .run(
                &mut client,
                &dm.program,
                &[
                    Value::Int(k % 2),
                    Value::Int((k + 1) % 2),
                    Value::Int(1000 + k % 512),
                    Value::Int(1600 + k % 512),
                    Value::Int(1),
                ],
                &controller.current(),
                &mut stats,
            )
            .unwrap();
        controller.maybe_refresh(&mut client);
        k += 1;
    }
    assert!(controller.refresh_count() > 0, "controller never fired");
    let seq = controller.current();
    // Branch units (0, 1) must both execute after the account units.
    let pos: HashMap<usize, usize> = seq
        .block_units
        .iter()
        .enumerate()
        .flat_map(|(bi, us)| us.iter().map(move |&u| (u, bi)))
        .collect();
    assert!(
        pos[&0] > pos[&2] && pos[&0] > pos[&3] && pos[&1] > pos[&2] && pos[&1] > pos[&3],
        "hot branch blocks should trail: {:?}",
        seq.block_units
    );
    cluster.shutdown();
}

/// The three evaluated systems produce commits (and only the nested ones
/// produce partial aborts) on the TPC-C NewOrder profile.
#[test]
fn all_systems_run_tpcc_neworder() {
    use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
    let tpcc = Tpcc::new(TpccConfig::default(), TpccMix::NEW_ORDER);
    for system in [SystemKind::QrDtm, SystemKind::QrCn, SystemKind::QrAcn] {
        let mut cfg = ScenarioConfig::scaled(system, 2);
        cfg.cluster = ClusterConfig::test(10, 2);
        cfg.intervals = 2;
        cfg.interval = std::time::Duration::from_millis(100);
        cfg.controller.period = std::time::Duration::from_millis(50);
        let r = run_scenario(&tpcc, &cfg);
        assert!(r.total_commits() > 0, "{system} committed nothing");
        if system == SystemKind::QrDtm {
            assert_eq!(r.total_partial_aborts(), 0);
        }
    }
}

/// Node failures mid-run do not break ACN execution (leaf failures keep
/// both quorum kinds available).
#[test]
fn acn_survives_leaf_failures() {
    let dm = Arc::new(DependencyModel::analyze(transfer()).unwrap());
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let controller = AcnController::new(
        Arc::clone(&dm),
        AlgorithmModule::with_model(Box::new(SumModel)),
        ControllerConfig::default(),
    );
    let mut client = cluster.client(0);
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    let run_one = |client: &mut DtmClient, stats: &mut ExecStats, k: i64| {
        engine
            .run(
                client,
                &dm.program,
                &[
                    Value::Int(k % 2),
                    Value::Int((k + 1) % 2),
                    Value::Int(10 + k),
                    Value::Int(20 + k),
                    Value::Int(1),
                ],
                &controller.current(),
                stats,
            )
            .unwrap();
    };
    for k in 0..5 {
        run_one(&mut client, &mut stats, k);
    }
    cluster.fail_server(4);
    cluster.fail_server(7);
    for k in 5..10 {
        run_one(&mut client, &mut stats, k);
    }
    cluster.recover_server(4);
    for k in 10..15 {
        run_one(&mut client, &mut stats, k);
    }
    assert_eq!(stats.commits, 15);
    cluster.shutdown();
}
