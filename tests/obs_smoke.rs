//! Observability smoke test — the CI gate for the `acn-obs` layer.
//!
//! Runs a tiny contended Bank scenario with observability enabled and
//! checks the layer's end-to-end contract: abort attribution reconciles
//! *exactly* against the executor counters (no lost or double-counted
//! events), the hot class is identified as the top aborter, and the
//! JSON-lines export parses back to an equal report.

use acn_workloads::bank::{Bank, BankConfig};
use qr_acn::prelude::*;
use std::time::Duration;

fn observed_bank_scenario() -> ScenarioResult {
    let bank = Bank::new(BankConfig {
        hot_pool: 8,
        cold_pool: 1024,
        write_pct: 95,
    });
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 4);
    cfg.cluster = ClusterConfig::test(10, 4);
    cfg.cluster.latency = LatencyModel::Zero;
    cfg.cluster.window.window = Duration::from_millis(40);
    cfg.intervals = 3;
    cfg.interval = Duration::from_millis(80);
    cfg.obs = Some(ObsConfig::default());
    run_scenario(&bank, &cfg)
}

#[test]
fn obs_smoke() {
    let r = observed_bank_scenario();
    assert!(r.total_commits() > 0, "scenario must make progress");
    let obs = r.obs.as_ref().expect("observability was enabled");

    // Attribution exactness: every abort the executor counted was
    // attributed exactly once — equality, not approximation.
    let counted = r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "attributed aborts must equal the executor's counters exactly"
    );

    // Four threads on an 8-object hot Branch pool: contention is real,
    // and the hot class is the top aborter.
    assert!(counted > 0, "hot-pool Bank run should see aborts");
    let top = obs.aborts.top_classes(1);
    assert_eq!(top[0].0, "Branch", "hot class must top the table: {top:?}");

    // The trace ring saw the run (at least one event per commit).
    assert!(obs.trace.recorded >= r.total_commits());

    // JSON-lines export: parses, round-trips to an equal value, and the
    // parsed counters match the run.
    let report = r.metrics_report(&[("bench", "obs_smoke".to_string())]);
    let text = report.to_json_lines();
    let parsed = MetricsReport::parse_json_lines(&text).expect("export must parse");
    assert_eq!(parsed, report, "JSON-lines round-trip must be exact");
    assert_eq!(parsed.exec.commits, r.total_commits());
    assert_eq!(parsed.exec.total_aborts(), counted);
    assert_eq!(
        parsed.attributed_total_of(&AbortKind::EXECUTOR_KINDS),
        counted
    );
    assert_eq!(parsed.top_classes(1)[0].0, "Branch");
}

/// `ExecCounters` exposed through the report agree with the per-interval
/// buckets — the regression guard for the counters the driver used to
/// drop (`locked_aborts`, `unavailable_retries`).
#[test]
fn report_carries_every_interval_counter() {
    let r = observed_bank_scenario();
    let report = r.metrics_report(&[]);
    assert_eq!(report.exec.commits, r.total_commits());
    assert_eq!(report.exec.full_aborts, r.total_full_aborts());
    assert_eq!(report.exec.partial_aborts, r.total_partial_aborts());
    assert_eq!(report.exec.locked_aborts, r.total_locked_aborts());
    assert_eq!(
        report.exec.unavailable_retries,
        r.total_unavailable_retries()
    );
    assert_eq!(
        report.trace.recorded,
        r.obs.as_ref().unwrap().trace.recorded
    );
}

/// The critical-path decomposition telescopes *exactly*: for every
/// committed transaction, `redo + lock + srvq + net + local` equals the
/// end-to-end span duration in integer nanoseconds — no residue, no
/// double-counting — and the per-class aggregate counts every decomposed
/// transaction exactly once.
#[test]
fn critical_path_sums_to_end_to_end() {
    let r = observed_bank_scenario();
    let obs = r.obs.as_ref().expect("observability was enabled");
    assert!(
        !obs.critpath.is_empty(),
        "committed transactions must decompose into critical paths"
    );
    for p in &obs.critpath {
        assert_eq!(
            p.redo_ns + p.lock_ns + p.srvq_ns + p.net_ns + p.local_ns,
            p.end_to_end_ns,
            "segments must telescope exactly for trace {}",
            p.trace
        );
    }
    // Ring accounting: one row per client worker thread plus the shared
    // server collector's row.
    assert_eq!(obs.thread_traces.len(), 4 + 1);
    assert!(obs
        .thread_traces
        .iter()
        .any(|row| row.thread == SERVER_TRACE_THREAD));
    // The whole-transaction (block == -1) aggregate rows carry the txn
    // counts: together they count every decomposed transaction once.
    let total: u64 = obs
        .critpath_rows
        .iter()
        .filter(|row| row.block == -1)
        .map(|row| row.txns)
        .sum();
    assert_eq!(total, obs.critpath.len() as u64);
}

/// The CI trace artifact: a contended Bank run over a lossy-free but slow
/// network whose Chrome-trace export round-trips *exactly* through the
/// vendored parser, and whose spans show the full client→server→client
/// nesting with non-zero server-queue and lock-wait segments. Prints the
/// repro seed on success; writes the trace into `$OBS_TRACE_DIR` when set
/// (CI uploads it as a workflow artifact).
#[test]
fn trace_artifact_round_trips() {
    let bank = Bank::new(BankConfig {
        hot_pool: 4,
        cold_pool: 512,
        write_pct: 95,
    });
    for seed in 42u64..=46 {
        let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 4);
        cfg.cluster = ClusterConfig::test(10, 4);
        cfg.cluster.latency = LatencyModel::Uniform {
            min: Duration::from_micros(20),
            max: Duration::from_micros(120),
        };
        cfg.cluster.window.window = Duration::from_millis(40);
        cfg.intervals = 2;
        cfg.interval = Duration::from_millis(100);
        cfg.seed = seed;
        cfg.obs = Some(ObsConfig::default());
        let r = run_scenario(&bank, &cfg);
        let obs = r.obs.as_ref().expect("observability was enabled");

        let dur_of = |kind: SpanKind| -> u64 {
            obs.spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.dur_ns)
                .sum()
        };
        let lock = dur_of(SpanKind::LockWait);
        let srvq = dur_of(SpanKind::ServerQueue);
        if lock == 0 || srvq == 0 || obs.critpath.is_empty() {
            eprintln!("seed {seed}: lock={lock}ns srvq={srvq}ns — retrying with next seed");
            continue;
        }
        println!("trace artifact repro: contended Bank, seed {seed}");

        // Full nesting: some server-queue span hangs off a client quorum
        // round, which hangs off a committed attempt.
        let nested = obs.spans.iter().any(|sq| {
            sq.kind == SpanKind::ServerQueue
                && obs.spans.iter().any(|round| {
                    round.id == sq.parent
                        && SpanKind::ROUNDS.contains(&round.kind)
                        && obs
                            .spans
                            .iter()
                            .any(|att| att.id == round.parent && att.kind == SpanKind::Attempt)
                })
        });
        assert!(nested, "seed {seed}: no client→server→client span chain");

        // Exact export/import round-trip through the vendored parser.
        let text = write_chrome_trace(&obs.spans, &obs.thread_traces);
        let (spans, rows) = parse_chrome_trace(&text).expect("trace must parse");
        assert_eq!(spans, obs.spans, "span round-trip must be exact");
        assert_eq!(rows, obs.thread_traces, "thread rows must round-trip");

        if let Ok(dir) = std::env::var("OBS_TRACE_DIR") {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).expect("create OBS_TRACE_DIR");
            let path = dir.join(format!("bank-contended-seed{seed}.trace.json"));
            std::fs::write(&path, &text).expect("write trace artifact");
            println!("wrote {}", path.display());
        }
        return;
    }
    panic!("no seed in 42..=46 produced both lock-wait and server-queue spans");
}
