//! Observability smoke test — the CI gate for the `acn-obs` layer.
//!
//! Runs a tiny contended Bank scenario with observability enabled and
//! checks the layer's end-to-end contract: abort attribution reconciles
//! *exactly* against the executor counters (no lost or double-counted
//! events), the hot class is identified as the top aborter, and the
//! JSON-lines export parses back to an equal report.

use acn_workloads::bank::{Bank, BankConfig};
use qr_acn::prelude::*;
use std::time::Duration;

fn observed_bank_scenario() -> ScenarioResult {
    let bank = Bank::new(BankConfig {
        hot_pool: 8,
        cold_pool: 1024,
        write_pct: 95,
    });
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 4);
    cfg.cluster = ClusterConfig::test(10, 4);
    cfg.cluster.latency = LatencyModel::Zero;
    cfg.cluster.window.window = Duration::from_millis(40);
    cfg.intervals = 3;
    cfg.interval = Duration::from_millis(80);
    cfg.obs = Some(ObsConfig::default());
    run_scenario(&bank, &cfg)
}

#[test]
fn obs_smoke() {
    let r = observed_bank_scenario();
    assert!(r.total_commits() > 0, "scenario must make progress");
    let obs = r.obs.as_ref().expect("observability was enabled");

    // Attribution exactness: every abort the executor counted was
    // attributed exactly once — equality, not approximation.
    let counted = r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "attributed aborts must equal the executor's counters exactly"
    );

    // Four threads on an 8-object hot Branch pool: contention is real,
    // and the hot class is the top aborter.
    assert!(counted > 0, "hot-pool Bank run should see aborts");
    let top = obs.aborts.top_classes(1);
    assert_eq!(top[0].0, "Branch", "hot class must top the table: {top:?}");

    // The trace ring saw the run (at least one event per commit).
    assert!(obs.trace.recorded >= r.total_commits());

    // JSON-lines export: parses, round-trips to an equal value, and the
    // parsed counters match the run.
    let report = r.metrics_report(&[("bench", "obs_smoke".to_string())]);
    let text = report.to_json_lines();
    let parsed = MetricsReport::parse_json_lines(&text).expect("export must parse");
    assert_eq!(parsed, report, "JSON-lines round-trip must be exact");
    assert_eq!(parsed.exec.commits, r.total_commits());
    assert_eq!(parsed.exec.total_aborts(), counted);
    assert_eq!(
        parsed.attributed_total_of(&AbortKind::EXECUTOR_KINDS),
        counted
    );
    assert_eq!(parsed.top_classes(1)[0].0, "Branch");
}

/// `ExecCounters` exposed through the report agree with the per-interval
/// buckets — the regression guard for the counters the driver used to
/// drop (`locked_aborts`, `unavailable_retries`).
#[test]
fn report_carries_every_interval_counter() {
    let r = observed_bank_scenario();
    let report = r.metrics_report(&[]);
    assert_eq!(report.exec.commits, r.total_commits());
    assert_eq!(report.exec.full_aborts, r.total_full_aborts());
    assert_eq!(report.exec.partial_aborts, r.total_partial_aborts());
    assert_eq!(report.exec.locked_aborts, r.total_locked_aborts());
    assert_eq!(
        report.exec.unavailable_retries,
        r.total_unavailable_retries()
    );
    assert_eq!(
        report.trace.recorded,
        r.obs.as_ref().unwrap().trace.recorded
    );
}
