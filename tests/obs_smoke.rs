//! Observability smoke test — the CI gate for the `acn-obs` layer.
//!
//! Runs a tiny contended Bank scenario with observability enabled and
//! checks the layer's end-to-end contract: abort attribution reconciles
//! *exactly* against the executor counters (no lost or double-counted
//! events), the hot class is identified as the top aborter, and the
//! JSON-lines export parses back to an equal report.

use acn_workloads::bank::{Bank, BankConfig};
use qr_acn::prelude::*;
use std::time::Duration;

fn observed_bank_config() -> (Bank, ScenarioConfig) {
    let bank = Bank::new(BankConfig {
        hot_pool: 8,
        cold_pool: 1024,
        write_pct: 95,
    });
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 4);
    cfg.cluster = ClusterConfig::test(10, 4);
    cfg.cluster.latency = LatencyModel::Zero;
    cfg.cluster.window.window = Duration::from_millis(40);
    cfg.intervals = 3;
    cfg.interval = Duration::from_millis(80);
    cfg.obs = Some(ObsConfig::default());
    (bank, cfg)
}

fn observed_bank_scenario() -> ScenarioResult {
    let (bank, cfg) = observed_bank_config();
    run_scenario(&bank, &cfg)
}

#[test]
fn obs_smoke() {
    let r = observed_bank_scenario();
    assert!(r.total_commits() > 0, "scenario must make progress");
    let obs = r.obs.as_ref().expect("observability was enabled");

    // Attribution exactness: every abort the executor counted was
    // attributed exactly once — equality, not approximation.
    let counted = r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "attributed aborts must equal the executor's counters exactly"
    );

    // Four threads on an 8-object hot Branch pool: contention is real,
    // and the hot class is the top aborter.
    assert!(counted > 0, "hot-pool Bank run should see aborts");
    let top = obs.aborts.top_classes(1);
    assert_eq!(top[0].0, "Branch", "hot class must top the table: {top:?}");

    // The trace ring saw the run (at least one event per commit).
    assert!(obs.trace.recorded >= r.total_commits());

    // JSON-lines export: parses, round-trips to an equal value, and the
    // parsed counters match the run.
    let report = r.metrics_report(&[("bench", "obs_smoke".to_string())]);
    let text = report.to_json_lines();
    let parsed = MetricsReport::parse_json_lines(&text).expect("export must parse");
    assert_eq!(parsed, report, "JSON-lines round-trip must be exact");
    assert_eq!(parsed.exec.commits, r.total_commits());
    assert_eq!(parsed.exec.total_aborts(), counted);
    assert_eq!(
        parsed.attributed_total_of(&AbortKind::EXECUTOR_KINDS),
        counted
    );
    assert_eq!(parsed.top_classes(1)[0].0, "Branch");
}

/// `ExecCounters` exposed through the report agree with the per-interval
/// buckets — the regression guard for the counters the driver used to
/// drop (`locked_aborts`, `unavailable_retries`).
#[test]
fn report_carries_every_interval_counter() {
    let r = observed_bank_scenario();
    let report = r.metrics_report(&[]);
    assert_eq!(report.exec.commits, r.total_commits());
    assert_eq!(report.exec.full_aborts, r.total_full_aborts());
    assert_eq!(report.exec.partial_aborts, r.total_partial_aborts());
    assert_eq!(report.exec.locked_aborts, r.total_locked_aborts());
    assert_eq!(
        report.exec.unavailable_retries,
        r.total_unavailable_retries()
    );
    assert_eq!(
        report.trace.recorded,
        r.obs.as_ref().unwrap().trace.recorded
    );
}

/// The critical-path decomposition telescopes *exactly*: for every
/// committed transaction, `redo + lock + srvq + wal + net + local` equals
/// the end-to-end span duration in integer nanoseconds — no residue, no
/// double-counting — and the per-class aggregate counts every decomposed
/// transaction exactly once. The `wal` segment (group-commit park time,
/// carved out of `net` by the `WalPark` spans) must telescope with the
/// rest even when it is zero on an in-memory cluster.
#[test]
fn critical_path_sums_to_end_to_end() {
    let r = observed_bank_scenario();
    let obs = r.obs.as_ref().expect("observability was enabled");
    assert!(
        !obs.critpath.is_empty(),
        "committed transactions must decompose into critical paths"
    );
    for p in &obs.critpath {
        assert_eq!(
            p.redo_ns + p.lock_ns + p.srvq_ns + p.wal_ns + p.net_ns + p.local_ns,
            p.end_to_end_ns,
            "segments must telescope exactly for trace {}",
            p.trace
        );
    }
    // Ring accounting: one row per client worker thread plus the shared
    // server collector's row.
    assert_eq!(obs.thread_traces.len(), 4 + 1);
    assert!(obs
        .thread_traces
        .iter()
        .any(|row| row.thread == SERVER_TRACE_THREAD));
    // The whole-transaction (block == -1) aggregate rows carry the txn
    // counts: together they count every decomposed transaction once.
    let total: u64 = obs
        .critpath_rows
        .iter()
        .filter(|row| row.block == -1)
        .map(|row| row.txns)
        .sum();
    assert_eq!(total, obs.critpath.len() as u64);
}

/// The CI trace artifact: a contended Bank run over a lossy-free but slow
/// network whose Chrome-trace export round-trips *exactly* through the
/// vendored parser, and whose spans show the full client→server→client
/// nesting with non-zero server-queue and lock-wait segments. Prints the
/// repro seed on success; writes the trace into `$OBS_TRACE_DIR` when set
/// (CI uploads it as a workflow artifact).
#[test]
fn trace_artifact_round_trips() {
    let bank = Bank::new(BankConfig {
        hot_pool: 4,
        cold_pool: 512,
        write_pct: 95,
    });
    for seed in 42u64..=46 {
        let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 4);
        cfg.cluster = ClusterConfig::test(10, 4);
        cfg.cluster.latency = LatencyModel::Uniform {
            min: Duration::from_micros(20),
            max: Duration::from_micros(120),
        };
        cfg.cluster.window.window = Duration::from_millis(40);
        cfg.intervals = 2;
        cfg.interval = Duration::from_millis(100);
        cfg.seed = seed;
        cfg.obs = Some(ObsConfig::default());
        let r = run_scenario(&bank, &cfg);
        let obs = r.obs.as_ref().expect("observability was enabled");

        let dur_of = |kind: SpanKind| -> u64 {
            obs.spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.dur_ns)
                .sum()
        };
        let lock = dur_of(SpanKind::LockWait);
        let srvq = dur_of(SpanKind::ServerQueue);
        if lock == 0 || srvq == 0 || obs.critpath.is_empty() {
            eprintln!("seed {seed}: lock={lock}ns srvq={srvq}ns — retrying with next seed");
            continue;
        }
        println!("trace artifact repro: contended Bank, seed {seed}");

        // Full nesting: some server-queue span hangs off a client quorum
        // round, which hangs off a committed attempt.
        let nested = obs.spans.iter().any(|sq| {
            sq.kind == SpanKind::ServerQueue
                && obs.spans.iter().any(|round| {
                    round.id == sq.parent
                        && SpanKind::ROUNDS.contains(&round.kind)
                        && obs
                            .spans
                            .iter()
                            .any(|att| att.id == round.parent && att.kind == SpanKind::Attempt)
                })
        });
        assert!(nested, "seed {seed}: no client→server→client span chain");

        // Exact export/import round-trip through the vendored parser.
        let text = write_chrome_trace(&obs.spans, &obs.thread_traces);
        let (spans, rows) = parse_chrome_trace(&text).expect("trace must parse");
        assert_eq!(spans, obs.spans, "span round-trip must be exact");
        assert_eq!(rows, obs.thread_traces, "thread rows must round-trip");

        if let Ok(dir) = std::env::var("OBS_TRACE_DIR") {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).expect("create OBS_TRACE_DIR");
            let path = dir.join(format!("bank-contended-seed{seed}.trace.json"));
            std::fs::write(&path, &text).expect("write trace artifact");
            println!("wrote {}", path.display());
        }
        return;
    }
    panic!("no seed in 42..=46 produced both lock-wait and server-queue spans");
}

/// The wasted-work ledger reconciles *exactly* on a healthy run: every
/// work unit the executors performed is either committed or discarded
/// (never both, never lost), the per-kind breakdown sums to the discard
/// totals, and the ledger agrees with the executor's own counters.
#[test]
fn wasted_work_ledger_reconciles_exactly() {
    let r = observed_bank_scenario();
    let obs = r.obs.as_ref().expect("observability was enabled");
    assert!(!obs.wasted.is_empty(), "the ledger must have seen work");
    obs.wasted
        .check()
        .expect("wasted-work invariant must hold exactly");
    // Every commit ran at least one block to completion, and a contended
    // hot pool discards real work on the way.
    assert!(
        obs.wasted.committed.blocks >= r.total_commits(),
        "committed blocks ({}) must cover every commit ({})",
        obs.wasted.committed.blocks,
        r.total_commits()
    );
    assert!(
        !obs.wasted.discarded().is_zero(),
        "hot-pool aborts must discard work"
    );
    // The per-kind breakdown only ever blames kinds the executor raises.
    for kind in obs.wasted.by_kind.keys() {
        assert!(
            AbortKind::EXECUTOR_KINDS.contains(kind),
            "healthy run blamed non-executor kind {kind:?}"
        );
    }
}

/// The same invariant under a *pinned* fault schedule: crashes, drops and
/// duplicate deliveries must not lose or double-charge a single work
/// unit. This is the CI chaos leg — the seed is pinned so the schedule
/// (and therefore the assertion) is reproducible bit-for-bit.
#[test]
fn wasted_invariant_holds_under_chaos() {
    const FAULT_SEED: u64 = 2026;
    let bank = Bank::new(BankConfig {
        hot_pool: 8,
        cold_pool: 1024,
        write_pct: 95,
    });
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, 3);
    cfg.cluster = ClusterConfig::test(7, 3);
    cfg.cluster.client_cfg = ClientConfig {
        rpc_timeout: Duration::from_millis(30),
        quorum_retries: 3,
        retry_backoff: Duration::from_micros(100),
        ..ClientConfig::default()
    };
    cfg.cluster.prepared_ttl = Duration::from_secs(2);
    cfg.cluster.window.window = Duration::from_millis(50);
    cfg.intervals = 3;
    cfg.interval = Duration::from_millis(100);
    cfg.retry.max_unavailable_retries = 1_000;
    cfg.seed = FAULT_SEED ^ 0xABCD; // workload RNG, distinct from the fault stream
    cfg.chaos = Some(FaultPlan::generate(
        FAULT_SEED,
        7,
        3,
        &ChaosProfile::default(),
    ));
    cfg.obs = Some(ObsConfig::default());
    let r = run_scenario(&bank, &cfg);
    assert!(r.total_commits() > 0, "chaos run must make progress");
    let obs = r.obs.as_ref().expect("observability was enabled");
    obs.wasted.check().unwrap_or_else(|e| {
        panic!("seed {FAULT_SEED}: wasted-work invariant broke under chaos: {e}")
    });
    assert!(
        !obs.wasted.discarded().is_zero(),
        "seed {FAULT_SEED}: a fault schedule must discard some work"
    );
    // The report round-trips exactly with the chaos-shaped ledger rows in.
    let report = r.metrics_report(&[("bench", "obs_chaos".to_string())]);
    let parsed =
        MetricsReport::parse_json_lines(&report.to_json_lines()).expect("export must parse");
    assert_eq!(parsed, report, "chaos report round-trip must be exact");
}

/// The windowed series counts every commit and abort exactly once, on the
/// measurement-interval grid, and merges across the worker threads
/// without loss — the per-window cells sum back to the run's counters.
#[test]
fn windowed_series_counts_every_outcome() {
    let r = observed_bank_scenario();
    let obs = r.obs.as_ref().expect("observability was enabled");
    assert!(!obs.series.is_empty(), "the run must fill windows");
    assert_eq!(
        obs.series.window_ns(),
        Duration::from_millis(80).as_nanos() as u64,
        "series grid must be the measurement interval"
    );
    assert_eq!(obs.series.evicted(), 0, "no healthy run evicts windows");
    assert_eq!(
        obs.series.total_commits(),
        r.total_commits(),
        "series must count every commit exactly once"
    );
    let (mut fulls, mut partials, mut lat_samples) = (0u64, 0u64, 0u64);
    for (_, cell) in obs.series.iter() {
        fulls += cell.full_aborts;
        partials += cell.partial_aborts;
        lat_samples += cell.latency.len();
    }
    assert_eq!(
        fulls,
        r.total_full_aborts() + r.total_locked_aborts(),
        "full restarts (incl. lock escalations) must land in the series"
    );
    assert_eq!(partials, r.total_partial_aborts());
    assert_eq!(
        lat_samples,
        r.total_commits(),
        "every commit must contribute one latency sample"
    );
}

/// An SLO trigger demonstrably fires and dumps the flight recorder: with
/// an impossibly tight p99 budget the policy must trip, the span rings
/// must land on disk as a Chrome trace that parses back *exactly*, and
/// the `flight` rows must ride the JSON-lines report. `$OBS_FLIGHT_DIR`
/// overrides the dump directory so CI can upload the artifact.
#[test]
fn slo_trigger_dumps_valid_flight_record() {
    let (bank, mut cfg) = observed_bank_config();
    let dir = std::env::var("OBS_FLIGHT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("acn-obs-flight-smoke"));
    cfg.slo = Some(SloConfig {
        policy: SloPolicy {
            p99_budget_ns: Some(1), // any real commit breaks a 1ns budget
            ..SloPolicy::default()
        },
        flight_dir: dir.clone(),
        label: "obs-smoke".to_string(),
    });
    let r = run_scenario(&bank, &cfg);
    assert!(r.total_commits() > 0, "scenario must make progress");
    let obs = r.obs.as_ref().expect("observability was enabled");

    let rec = obs
        .flights
        .iter()
        .find(|f| f.trigger == "p99_latency")
        .expect("a 1ns p99 budget must trip");
    assert!(
        rec.value_milli > rec.budget_milli,
        "the trigger must record the measured value against its budget"
    );
    assert!(!rec.artifact.is_empty(), "the dump must land on disk");

    // The artifact is a valid Chrome trace holding exactly the spans the
    // run retained.
    let text = std::fs::read_to_string(&rec.artifact).expect("flight artifact must be readable");
    let (spans, rows) = parse_chrome_trace(&text).expect("flight dump must be a valid trace");
    assert_eq!(spans, obs.spans, "the dump must hold the retained spans");
    assert_eq!(rows, obs.thread_traces);

    // The flight rows ride the report and round-trip exactly.
    let report = r.metrics_report(&[("bench", "obs_slo".to_string())]);
    let text = report.to_json_lines();
    assert!(text.contains("p99_latency"), "flight rows must be exported");
    let parsed = MetricsReport::parse_json_lines(&text).expect("export must parse");
    assert_eq!(parsed, report, "flight-row round-trip must be exact");
}

/// The Prometheus exposition of a real run round-trips exactly through
/// the vendored parser — `parse(render(m)) == m` — and carries the
/// headline families the scrape surface promises.
#[test]
fn prometheus_export_round_trips() {
    let r = observed_bank_scenario();
    let report = r.metrics_report(&[("bench", "obs_prom".to_string())]);
    let metrics = report_to_prom(&report);
    assert!(!metrics.is_empty());
    let text = render_prom(&metrics);
    for family in [
        "acn_txns_total",
        "acn_commit_latency_ns",
        "acn_aborts_total",
        "acn_work_units_total",
    ] {
        assert!(text.contains(family), "exposition must carry {family}");
    }
    // Empty families (no SLO trips on this run) are skipped on render —
    // the round trip is exact over every family that made the wire.
    let parsed = parse_prom(&text).expect("prometheus text must parse");
    let rendered: Vec<&PromMetric> = metrics.iter().filter(|m| !m.samples.is_empty()).collect();
    assert_eq!(parsed.len(), rendered.len());
    for (back, orig) in parsed.iter().zip(rendered) {
        assert_eq!(back, orig, "prometheus round-trip must be exact");
    }
    assert_eq!(render_prom(&parsed), text, "re-render must be identical");
}
