//! The chaos suite: Bank, TPC-C and Vacation under seeded fault schedules.
//!
//! Every run installs a [`FaultPlan`] expanded from a single seed — message
//! drops/duplicates/delays plus a quorum-splitting partition and a server
//! crash window, all healing before the final measurement interval — and
//! records every committed transaction's read/write versions into a
//! [`HistoryLog`]. After the run the checker must find a serializable,
//! torn-commit-free history, and the healed tail of the run must show
//! progress.
//!
//! Reproduce a failure with `CHAOS_SEED=<seed> cargo test --test
//! chaos_suite` — the failing seed is printed on every assertion.

use qr_acn::prelude::*;
use qr_acn::workloads::bank::Bank;
use qr_acn::workloads::tpcc::Tpcc;
use qr_acn::workloads::vacation::Vacation;
use qr_acn::workloads::Workload;
use std::sync::Arc;
use std::time::Duration;

/// Eight fixed fault seeds (primes, for no particular reason beyond being
/// memorable). `CHAOS_SEED` replaces the whole list with one seed.
const SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => SEEDS.to_vec(),
    }
}

/// The suite's cluster and protocol shape: 7 servers / 3 clients, fast
/// RPC timeouts so fault windows are survivable within a 400 ms run.
///
/// `prepared_ttl` is deliberately *longer than the whole run*: a partition
/// can outlive any sub-second TTL while a decided commit's phase 2 is still
/// undeliverable to a minority member, and sweeping that member's lock
/// would let a second transaction commit the same version — a genuine torn
/// write. The TTL path itself is covered by `crates/dtm/tests/
/// chaos_recovery.rs`, where the coordinator is provably dead.
fn suite_config(system: SystemKind, fault_seed: u64) -> (ScenarioConfig, Arc<HistoryLog>) {
    let mut cfg = ScenarioConfig::scaled(system, 3);
    cfg.cluster = ClusterConfig::test(7, 3);
    cfg.cluster.client_cfg = ClientConfig {
        rpc_timeout: Duration::from_millis(30),
        quorum_retries: 3,
        retry_backoff: Duration::from_micros(100),
        ..ClientConfig::default()
    };
    cfg.cluster.prepared_ttl = Duration::from_secs(2);
    cfg.cluster.window.window = Duration::from_millis(50);
    cfg.intervals = 4;
    cfg.interval = Duration::from_millis(100);
    cfg.controller.period = Duration::from_millis(100);
    cfg.retry.max_unavailable_retries = 1_000;
    cfg.seed = fault_seed ^ 0xABCD; // workload RNG, distinct from the fault stream
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        7,
        3,
        &ChaosProfile::default(),
    ));
    let history = Arc::new(HistoryLog::new());
    cfg.history = Some(Arc::clone(&history));
    (cfg, history)
}

/// Run one workload under one fault seed; assert the committed history is
/// clean and that the healed tail made progress. Returns the verdict for
/// determinism comparisons.
fn run_under_seed(workload: &dyn Workload, system: SystemKind, fault_seed: u64) -> bool {
    eprintln!("chaos seed {fault_seed} ({system})");
    let (cfg, history) = suite_config(system, fault_seed);
    let result = qr_acn::workloads::run_scenario(workload, &cfg);
    let records = history.snapshot();
    let verdict = check_history(&records);
    if let Err(violations) = &verdict {
        panic!(
            "seed {fault_seed}: history checker failed with {} violation(s): {:#?}",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }
    assert!(
        result
            .intervals
            .last()
            .expect("intervals non-empty")
            .commits
            > 0,
        "seed {fault_seed}: no progress after faults healed: {:?}",
        result.intervals
    );
    assert!(
        result.total_commits() as usize <= records.len(),
        "seed {fault_seed}: every counted commit must be in the history \
         ({} counted, {} recorded)",
        result.total_commits(),
        records.len()
    );
    verdict.is_ok()
}

/// Run one workload in **batch-ingest mode** under one fault seed: the
/// conflict-graph scheduler dispatches wave after wave (with overlap, so
/// cross-wave conflicts are genuinely speculative) while the fault schedule
/// drops, duplicates and delays messages. The DTM's validation still
/// guards every commit — speculation changes who aborts and how aborts are
/// repaired, never what commits — so the history checker must stay clean
/// and abort attribution must reconcile exactly against the new `Spec*`
/// kinds.
fn run_batch_seed(workload: &dyn Workload, system: SystemKind, spec: SpecMode, fault_seed: u64) {
    run_batch_seed_with(workload, system, spec, false, fault_seed)
}

fn run_batch_seed_with(
    workload: &dyn Workload,
    system: SystemKind,
    spec: SpecMode,
    speculate_inexact: bool,
    fault_seed: u64,
) {
    eprintln!("batch chaos seed {fault_seed} ({system}, {spec:?}, speculate={speculate_inexact})");
    let (mut cfg, history) = suite_config(system, fault_seed);
    cfg.batch = Some(BatchConfig {
        wave: 24,
        spec,
        overlap: true,
        speculate_inexact,
    });
    cfg.obs = Some(ObsConfig::default());
    let result = qr_acn::workloads::run_scenario(workload, &cfg);

    let records = history.snapshot();
    if let Err(violations) = check_history(&records) {
        panic!(
            "seed {fault_seed}: batch-mode run failed the history checker with {} violation(s): \
             {:#?}\nreproduce with: CHAOS_SEED={fault_seed} cargo test --test chaos_suite",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }
    assert!(
        result.total_commits() > 0,
        "seed {fault_seed}: batch mode made no progress: {:?}",
        result.intervals
    );
    let ws = result.batch.expect("wave stats present in batch mode");
    assert!(
        ws.txns >= result.total_commits(),
        "seed {fault_seed}: every counted commit was scheduled through a wave"
    );
    let obs = result.obs.as_ref().expect("observability was enabled");
    let counted =
        result.total_full_aborts() + result.total_partial_aborts() + result.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "seed {fault_seed}: attributed aborts must equal executor counters in batch mode"
    );
    assert_eq!(
        obs.aborts.total_of(&[
            AbortKind::ReadInvalid,
            AbortKind::CommitConflict,
            AbortKind::Partial,
        ]),
        0,
        "seed {fault_seed}: batch-mode aborts must carry the Spec* labels"
    );
}

#[test]
fn bank_batch_history_is_serializable_under_every_seed() {
    let bank = Bank::default();
    for seed in seeds() {
        run_batch_seed(&bank, SystemKind::QrCn, SpecMode::Partial, seed);
    }
}

#[test]
fn tpcc_batch_history_is_serializable_under_every_seed() {
    let tpcc = Tpcc::new(
        qr_acn::workloads::tpcc::TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 40,
            ol_min: 3,
            ol_max: 6,
        },
        qr_acn::workloads::tpcc::TpccMix::MIXED,
    );
    for seed in seeds() {
        run_batch_seed(&tpcc, SystemKind::QrCn, SpecMode::Partial, seed);
    }
}

/// The Block-STM-style ablation arm survives chaos too: flat sequences,
/// full re-execution on every mis-speculation, history still clean.
#[test]
fn bank_batch_full_restart_stays_serializable() {
    let bank = Bank::default();
    run_batch_seed(&bank, SystemKind::QrCn, SpecMode::FullRestart, SEEDS[1]);
}

/// The NEW_ORDER-only mix on the `speculate_inexact` arm: every instance
/// carries predicted-exact access sets from the symbolic resolver and the
/// hot-counter predictor, so wrong counter guesses surface dynamically as
/// `spec_mispredict` aborts while fault injection scrambles the message
/// schedule underneath. The history must stay clean and abort attribution
/// must reconcile exactly — mispredictions get their own kind instead of
/// being lumped into `SpecPartial` (DESIGN.md §14).
#[test]
fn tpcc_neworder_batch_speculative_attribution_stays_exact() {
    let tpcc = Tpcc::new(
        qr_acn::workloads::tpcc::TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 40,
            ol_min: 3,
            ol_max: 6,
        },
        qr_acn::workloads::tpcc::TpccMix::NEW_ORDER,
    );
    for seed in seeds() {
        run_batch_seed_with(&tpcc, SystemKind::QrCn, SpecMode::Partial, true, seed);
    }
}

/// Run one workload under an **amnesia-crash** schedule: one server loses
/// its entire store mid-run and must catch up from its peers before it may
/// serve reads or vote again. Asserts the committed history stays clean,
/// the healed tail makes progress (post-recovery staleness converges), the
/// wipe-and-catch-up actually happened, and abort attribution still
/// reconciles exactly — sync refusals included.
fn run_amnesia_seed(workload: &dyn Workload, system: SystemKind, fault_seed: u64) {
    eprintln!("amnesia chaos seed {fault_seed} ({system})");
    let (mut cfg, history) = suite_config(system, fault_seed);
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        7,
        3,
        &ChaosProfile {
            partitions: 0,
            crashes: 0,
            amnesia_crashes: 1,
            ..ChaosProfile::default()
        },
    ));
    cfg.obs = Some(ObsConfig::default());
    let result = qr_acn::workloads::run_scenario(workload, &cfg);

    let records = history.snapshot();
    if let Err(violations) = check_history(&records) {
        panic!(
            "seed {fault_seed}: amnesia run failed the history checker with {} violation(s): {:#?}",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }
    assert!(
        result
            .intervals
            .last()
            .expect("intervals non-empty")
            .commits
            > 0,
        "seed {fault_seed}: no progress after the amnesia window healed: {:?}",
        result.intervals
    );
    assert!(
        result.recovery.amnesia_wipes >= 1,
        "seed {fault_seed}: the scheduled amnesia crash must have wiped a replica"
    );
    assert!(
        result.recovery.syncs_completed >= 1,
        "seed {fault_seed}: the wiped replica must finish catch-up before the run ends \
         (wipes={}, completed={})",
        result.recovery.amnesia_wipes,
        result.recovery.syncs_completed
    );
    // Attribution exactness survives recovery back-pressure: every abort
    // the executor counted — sync-refused commits included — is attributed
    // exactly once.
    let obs = result.obs.as_ref().expect("observability was enabled");
    let counted =
        result.total_full_aborts() + result.total_partial_aborts() + result.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "seed {fault_seed}: attributed aborts must equal executor counters under amnesia chaos"
    );
}

/// Under a faulted run — message drops, duplicates, delays and an amnesia
/// crash — every server-side span must still attach to a client-side parent
/// span. The client closes its round span on *every* exit path (timeouts
/// included), so a server span whose request was duplicated, or whose reply
/// was dropped, still resolves to a recorded parent: no orphans.
#[test]
fn server_spans_have_client_parents_under_chaos() {
    let bank = Bank::default();
    let fault_seed = SEEDS[2];
    eprintln!("orphan-span chaos seed {fault_seed}");
    let (mut cfg, _history) = suite_config(SystemKind::QrCn, fault_seed);
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        7,
        3,
        &ChaosProfile {
            partitions: 0,
            crashes: 0,
            amnesia_crashes: 1,
            ..ChaosProfile::default()
        },
    ));
    // Rings big enough that nothing is evicted: a dropped client span would
    // make the check vacuous (an orphan could hide behind the eviction).
    cfg.obs = Some(ObsConfig {
        span_capacity: 1 << 18,
        ..ObsConfig::default()
    });
    let result = qr_acn::workloads::run_scenario(&bank, &cfg);

    let obs = result.obs.as_ref().expect("observability was enabled");
    for row in &obs.thread_traces {
        assert_eq!(
            row.dropped, 0,
            "seed {fault_seed}: ring {} evicted spans; orphan check would be vacuous",
            row.thread
        );
    }
    let client_ids: std::collections::HashSet<u64> = obs
        .spans
        .iter()
        .filter(|s| !SpanKind::SERVER.contains(&s.kind))
        .map(|s| s.id)
        .collect();
    let server_spans: Vec<&Span> = obs
        .spans
        .iter()
        .filter(|s| SpanKind::SERVER.contains(&s.kind))
        .collect();
    assert!(
        !server_spans.is_empty(),
        "seed {fault_seed}: a faulted bank run must record server-side spans"
    );
    for s in &server_spans {
        // WalSync is the one deliberate root: an fsync batches records
        // from many rounds, so it carries no single client parent.
        if s.kind == SpanKind::WalSync {
            assert_eq!(s.parent, 0, "WalSync spans are server-local roots");
            assert_eq!(s.trace, 0, "WalSync spans belong to no client trace");
            continue;
        }
        assert!(
            s.parent != 0 && client_ids.contains(&s.parent),
            "seed {fault_seed}: orphan {:?} span on node {} (parent {} not found \
             among {} client spans)",
            s.kind,
            s.node,
            s.parent,
            client_ids.len()
        );
    }
}

/// One seed always expands to one fault schedule, and two consecutive runs
/// of the same seeded scenario reach the same invariant-checker verdict.
#[test]
fn same_seed_same_schedule_and_verdict() {
    for seed in [3u64, 1337, 0xDEAD_BEEF] {
        let a = FaultPlan::generate(seed, 7, 3, &ChaosProfile::default());
        let b = FaultPlan::generate(seed, 7, 3, &ChaosProfile::default());
        assert_eq!(a, b, "seed {seed} expanded to two different plans");
        assert_ne!(
            a,
            FaultPlan::generate(seed + 1, 7, 3, &ChaosProfile::default()),
            "adjacent seeds should not collide"
        );
    }
    let bank = Bank::default();
    let first = run_under_seed(&bank, SystemKind::QrDtm, SEEDS[0]);
    let second = run_under_seed(&bank, SystemKind::QrDtm, SEEDS[0]);
    assert_eq!(first, second, "same seed, different verdicts");
}

#[test]
fn bank_history_is_serializable_under_every_seed() {
    let bank = Bank::default();
    for seed in seeds() {
        run_under_seed(&bank, SystemKind::QrAcn, seed);
    }
}

#[test]
fn tpcc_history_is_serializable_under_every_seed() {
    // Scaled-down catalog: the suite stresses the protocol under faults,
    // not workload size, and seeding 600 objects per run × 8 seeds would
    // dominate the suite's runtime.
    let tpcc = Tpcc::new(
        qr_acn::workloads::tpcc::TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 40,
            ol_min: 3,
            ol_max: 6,
        },
        qr_acn::workloads::tpcc::TpccMix::MIXED,
    );
    for seed in seeds() {
        run_under_seed(&tpcc, SystemKind::QrDtm, seed);
    }
}

#[test]
fn vacation_history_is_serializable_under_every_seed() {
    let vacation = Vacation::default();
    for seed in seeds() {
        run_under_seed(&vacation, SystemKind::QrCn, seed);
    }
}

#[test]
fn bank_recovers_from_amnesia_crashes_under_every_seed() {
    let bank = Bank::default();
    for seed in seeds() {
        run_amnesia_seed(&bank, SystemKind::QrAcn, seed);
    }
}

#[test]
fn vacation_recovers_from_amnesia_crashes_under_every_seed() {
    let vacation = Vacation::default();
    for seed in seeds() {
        run_amnesia_seed(&vacation, SystemKind::QrCn, seed);
    }
}

/// Run one workload under a **crash-restart** schedule: one server crashes
/// keeping its durable log, replays it on rejoin, and fetches only the
/// outage delta from peers. Asserts the committed history stays clean, the
/// healed tail makes progress, the replay-then-delta-sync recovery actually
/// happened (amnesia was *not* involved), abort attribution reconciles
/// exactly, and the recovery counters survive the metrics-report round
/// trip.
fn run_crash_restart_seed(workload: &dyn Workload, system: SystemKind, fault_seed: u64) {
    eprintln!("crash-restart chaos seed {fault_seed} ({system})");
    let (mut cfg, history) = suite_config(system, fault_seed);
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        7,
        3,
        &ChaosProfile {
            partitions: 0,
            crashes: 0,
            restart_crashes: 1,
            ..ChaosProfile::default()
        },
    ));
    cfg.obs = Some(ObsConfig::default());
    let result = qr_acn::workloads::run_scenario(workload, &cfg);

    let records = history.snapshot();
    if let Err(violations) = check_history(&records) {
        panic!(
            "seed {fault_seed}: crash-restart run failed the history checker with \
             {} violation(s): {:#?}\nreproduce with: CHAOS_SEED={fault_seed} cargo test \
             --test chaos_suite",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }
    assert!(
        result
            .intervals
            .last()
            .expect("intervals non-empty")
            .commits
            > 0,
        "seed {fault_seed}: no progress after the restart window healed: {:?}",
        result.intervals
    );
    assert!(
        result.recovery.restart_replays >= 1,
        "seed {fault_seed}: the scheduled crash-restart must have replayed a WAL"
    );
    assert!(
        result.recovery.wal_records_replayed >= 1,
        "seed {fault_seed}: the victim was seeded before the crash, its log cannot be empty"
    );
    assert_eq!(
        result.recovery.amnesia_wipes, 0,
        "seed {fault_seed}: a restart crash must not wipe the disk"
    );
    assert!(
        result.recovery.syncs_completed >= 1,
        "seed {fault_seed}: the restarted replica must finish its delta sync before the \
         run ends (replays={}, completed={})",
        result.recovery.restart_replays,
        result.recovery.syncs_completed
    );
    // Attribution exactness survives recovery back-pressure.
    let obs = result.obs.as_ref().expect("observability was enabled");
    let counted =
        result.total_full_aborts() + result.total_partial_aborts() + result.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "seed {fault_seed}: attributed aborts must equal executor counters under restart chaos"
    );
    // The new counters ride the metrics report, not just ScenarioResult.
    let report = result.metrics_report(&[]);
    let reported = report
        .recovery
        .expect("a restart run must report recovery counters");
    assert_eq!(
        reported, result.recovery,
        "seed {fault_seed}: reported recovery counters must match the run's"
    );
}

#[test]
fn bank_recovers_from_crash_restarts_under_every_seed() {
    let bank = Bank::default();
    for seed in seeds() {
        run_crash_restart_seed(&bank, SystemKind::QrAcn, seed);
    }
}

#[test]
fn tpcc_recovers_from_crash_restarts_under_every_seed() {
    // Same scaled-down catalog as the serializability TPC-C arm.
    let tpcc = Tpcc::new(
        qr_acn::workloads::tpcc::TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 40,
            ol_min: 3,
            ol_max: 6,
        },
        qr_acn::workloads::tpcc::TpccMix::MIXED,
    );
    for seed in seeds() {
        run_crash_restart_seed(&tpcc, SystemKind::QrDtm, seed);
    }
}

/// Run one workload through the **durability gauntlet**: group-commit
/// batching on every replica's WAL, seeded storage faults (append and sync
/// I/O errors with degraded-mode vote refusals), and a crash-restart whose
/// reload drops the victim's entire unsynced suffix — the OS page cache
/// the power cut never flushed. The lost-ack invariant must hold anyway:
/// every transaction whose commit the client saw acknowledged survives in
/// at least one final replica inventory, and no replica replays a version
/// nobody committed. Acks are only honest if the server defers them until
/// the covering WAL record is durable; this profile is the test that
/// catches an early ack.
fn run_durability_seed(workload: &dyn Workload, system: SystemKind, fault_seed: u64) {
    eprintln!("durability chaos seed {fault_seed} ({system})");
    let (mut cfg, history) = suite_config(system, fault_seed);
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        7,
        3,
        &ChaosProfile {
            partitions: 0,
            crashes: 0,
            restart_crashes: 1,
            ..ChaosProfile::default()
        },
    ));
    cfg.obs = Some(ObsConfig::default());
    cfg.cluster.durability = DurabilityMode::GroupCommit {
        max_records: 8,
        max_delay: Duration::from_millis(2),
    };
    cfg.cluster.wal_faults = Some(FaultLogConfig {
        seed: fault_seed,
        append_error_p: 0.02,
        sync_error_p: 0.02,
        lose_unsynced_on_restart: true,
        ..FaultLogConfig::default()
    });
    let result = qr_acn::workloads::run_scenario(workload, &cfg);

    let records = history.snapshot();
    if let Err(violations) = check_history(&records) {
        panic!(
            "seed {fault_seed}: durability run failed the history checker with \
             {} violation(s): {:#?}\nreproduce with: CHAOS_SEED={fault_seed} cargo test \
             --test chaos_suite",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }
    let acked = history.acked_snapshot();
    let inventories: Vec<_> = result
        .server_stats
        .iter()
        .map(|s| s.inventory.clone())
        .collect();
    match check_durability(&records, &acked, &inventories) {
        Ok(summary) => {
            assert!(
                summary.acked_commits > 0,
                "seed {fault_seed}: the run acknowledged commits, the checker must see them"
            );
            assert_eq!(
                summary.replicas, 7,
                "seed {fault_seed}: every replica reported an inventory"
            );
        }
        Err(violations) => panic!(
            "seed {fault_seed}: lost-ack checker failed with {} violation(s): {:#?}\n\
             reproduce with: CHAOS_SEED={fault_seed} cargo test --test chaos_suite",
            violations.len(),
            &violations[..violations.len().min(5)]
        ),
    }
    assert!(
        result
            .intervals
            .last()
            .expect("intervals non-empty")
            .commits
            > 0,
        "seed {fault_seed}: no progress after the restart window healed: {:?}",
        result.intervals
    );
    assert!(
        result.recovery.restart_replays >= 1,
        "seed {fault_seed}: the scheduled crash-restart must have replayed a WAL"
    );
    // No lower bound on `wal_records_replayed` here: if the victim joined
    // its first write quorum shortly before the crash, the lost unsynced
    // suffix can legitimately be its *entire* log — that is the fault
    // being modeled, and the lost-ack check above is what bounds it.
    assert!(
        result.recovery.wal_sync_batches >= 1,
        "seed {fault_seed}: deferred acks force syncs; none were counted"
    );
    assert!(
        result.recovery.wal_records_synced >= result.recovery.wal_sync_batches,
        "seed {fault_seed}: every counted sync batch covers at least one record \
         (batches={}, records={})",
        result.recovery.wal_sync_batches,
        result.recovery.wal_records_synced
    );
    // Attribution exactness survives storage back-pressure: `wal_refused`
    // votes get their own kind instead of inflating CommitConflict.
    let obs = result.obs.as_ref().expect("observability was enabled");
    let counted =
        result.total_full_aborts() + result.total_partial_aborts() + result.total_locked_aborts();
    assert_eq!(
        obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
        counted,
        "seed {fault_seed}: attributed aborts must equal executor counters under storage faults"
    );
}

#[test]
fn bank_durability_survives_suffix_loss_under_every_seed() {
    let bank = Bank::default();
    for seed in seeds() {
        run_durability_seed(&bank, SystemKind::QrAcn, seed);
    }
}

#[test]
fn tpcc_durability_survives_suffix_loss_under_every_seed() {
    // Same scaled-down catalog as the serializability TPC-C arm.
    let tpcc = Tpcc::new(
        qr_acn::workloads::tpcc::TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 40,
            ol_min: 3,
            ol_max: 6,
        },
        qr_acn::workloads::tpcc::TpccMix::MIXED,
    );
    for seed in seeds() {
        run_durability_seed(&tpcc, SystemKind::QrDtm, seed);
    }
}

/// Both crash flavors in one schedule: one replica restarts with its log,
/// another loses everything. The two recovery paths must coexist without
/// confusing each other's sync traffic (incarnations keep them apart), the
/// history must stay clean, and both paths must complete.
#[test]
fn mixed_restart_and_amnesia_crashes_stay_serializable() {
    let bank = Bank::default();
    for fault_seed in seeds() {
        eprintln!("mixed crash chaos seed {fault_seed}");
        let (mut cfg, history) = suite_config(SystemKind::QrAcn, fault_seed);
        cfg.chaos = Some(FaultPlan::generate(
            fault_seed,
            7,
            3,
            &ChaosProfile {
                partitions: 0,
                crashes: 0,
                amnesia_crashes: 1,
                restart_crashes: 1,
                ..ChaosProfile::default()
            },
        ));
        cfg.obs = Some(ObsConfig::default());
        let result = qr_acn::workloads::run_scenario(&bank, &cfg);

        let records = history.snapshot();
        if let Err(violations) = check_history(&records) {
            panic!(
                "seed {fault_seed}: mixed-crash run failed the history checker with \
                 {} violation(s): {:#?}",
                violations.len(),
                &violations[..violations.len().min(5)]
            );
        }
        assert!(
            result
                .intervals
                .last()
                .expect("intervals non-empty")
                .commits
                > 0,
            "seed {fault_seed}: no progress after the mixed crash windows healed"
        );
        assert!(
            result.recovery.restart_replays >= 1,
            "seed {fault_seed}: the restart crash must have replayed a WAL"
        );
        assert!(
            result.recovery.amnesia_wipes >= 1,
            "seed {fault_seed}: the amnesia crash must have wiped a replica"
        );
        // ≥ 1, not 2: overlapping windows on one victim legitimately merge
        // the two recoveries into a single completed catch-up.
        assert!(
            result.recovery.syncs_completed >= 1,
            "seed {fault_seed}: recovery must complete before the run ends \
             (replays={}, wipes={}, completed={})",
            result.recovery.restart_replays,
            result.recovery.amnesia_wipes,
            result.recovery.syncs_completed
        );
        let obs = result.obs.as_ref().expect("observability was enabled");
        let counted = result.total_full_aborts()
            + result.total_partial_aborts()
            + result.total_locked_aborts();
        assert_eq!(
            obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
            counted,
            "seed {fault_seed}: attributed aborts must reconcile under mixed crash chaos"
        );
    }
}

/// Negative control: the checker must flag a deliberately torn commit — a
/// forged transaction claiming a write of an already-committed version.
#[test]
fn checker_flags_a_deliberately_torn_commit() {
    let bank = Bank::default();
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrDtm, 2);
    cfg.cluster = ClusterConfig::test(4, 2);
    cfg.intervals = 2;
    cfg.interval = Duration::from_millis(50);
    let history = Arc::new(HistoryLog::new());
    cfg.history = Some(Arc::clone(&history));
    let _ = qr_acn::workloads::run_scenario(&bank, &cfg);

    let mut records = history.snapshot();
    check_history(&records).expect("healthy run must be clean");
    let victim = records
        .iter()
        .find(|r| !r.writes.is_empty())
        .expect("a bank run commits writes")
        .clone();
    let mut forged = victim;
    forged.txn = TxnId {
        client: NodeId(9_999),
        seq: 0,
    };
    records.push(forged);

    let violations = check_history(&records).expect_err("torn commit must be flagged");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::TornWrite { .. })),
        "expected a TornWrite violation, got {violations:?}"
    );
}

/// Negative control for the durability checker: forge an *acknowledged*
/// commit whose write survives on no replica — exactly the state an early
/// ack plus a crash would produce — and the checker must flag it as a
/// lost ack.
#[test]
fn durability_checker_flags_a_forged_lost_ack() {
    let bank = Bank::default();
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrDtm, 2);
    cfg.cluster = ClusterConfig::test(4, 2);
    cfg.intervals = 2;
    cfg.interval = Duration::from_millis(50);
    let history = Arc::new(HistoryLog::new());
    cfg.history = Some(Arc::clone(&history));
    let result = qr_acn::workloads::run_scenario(&bank, &cfg);

    let mut records = history.snapshot();
    let mut acked = history.acked_snapshot();
    let inventories: Vec<_> = result
        .server_stats
        .iter()
        .map(|s| s.inventory.clone())
        .collect();
    check_durability(&records, &acked, &inventories).expect("healthy run must be durably clean");

    // The forged transaction claims writes far above anything any replica
    // retained, and claims the client saw its commit acknowledged.
    let victim = records
        .iter()
        .find(|r| !r.writes.is_empty())
        .expect("a bank run commits writes")
        .clone();
    let mut forged = victim;
    forged.txn = TxnId {
        client: NodeId(9_999),
        seq: 0,
    };
    for (_, v) in forged.writes.iter_mut() {
        *v += 1_000_000;
    }
    acked.insert(forged.txn);
    records.push(forged);

    let violations = check_durability(&records, &acked, &inventories)
        .expect_err("a forged lost ack must be flagged");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::LostAck { .. })),
        "expected a LostAck violation, got {violations:?}"
    );
}
